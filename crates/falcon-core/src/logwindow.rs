//! The small log window (design D1, §4.3) and its conventional-NVM-log
//! twin.
//!
//! Each worker thread owns one window: a few fixed slots, each holding
//! the redo log of one transaction, reused round-robin. For the
//! **small** window the total footprint is a few KB per thread — small
//! enough that, re-touched every transaction, its cache lines stay
//! resident under LRU and logging costs *zero* NVM media writes while
//! remaining durable (persistent cache). For the **conventional** NVM
//! log (the Inp baselines), the same structure is configured with large
//! slots and per-record `clwb`, so every commit streams log bytes to NVM.
//!
//! Slot lifecycle: `FREE → UNCOMMITTED → COMMITTED → FREE`. Recovery
//! (§5.3) replays `COMMITTED` slots (apply may have been cut short) and
//! undoes the index inserts of `UNCOMMITTED` slots; `FREE` slots are
//! transactions whose in-place apply finished — their effects are already
//! durable under eADR.
//!
//! A transaction whose redo outgrows its slot spills to a per-thread
//! overflow region (large, streamed, naturally evicted): this is the
//! §5.5 limitation that Figure 12 measures.

#[cfg(feature = "persist-check")]
use pmem_sim::trace::Event;
use pmem_sim::{MemCtx, PAddr, PmemDevice};

use falcon_storage::layout::PAGE_SIZE;
use falcon_storage::{Catalog, NvmAllocator};

use crate::crc;
use crate::error::{EngineError, TxnError};

/// Slot states.
pub const FREE: u64 = 0;
/// Transaction running; logs may be partial.
pub const UNCOMMITTED: u64 = 1;
/// Transaction committed; in-place apply may be incomplete.
pub const COMMITTED: u64 = 2;

// Window header layout (public so crash/chaos tests can aim targeted
// corruption at specific words).
/// Window header: slot count.
pub const W_SLOTS: u64 = 0;
/// Window header: per-slot payload bytes.
pub const W_SLOT_BYTES: u64 = 8;
/// Window header: overflow-spill region base address (0 = none yet).
pub const W_SPILL: u64 = 16;
/// Window header size.
pub const W_HDR: u64 = 64;

// Overflow-spill region header layout (64 B, ahead of the record data).
/// Spill header: magic word identifying a formatted region.
pub const SP_MAGIC: u64 = 0;
/// Spill header: data capacity in bytes (the backpressure cap).
pub const SP_CAP: u64 = 8;
/// Spill header: durable tail — bytes of live record stream.
pub const SP_TAIL: u64 = 16;
/// Spill region header size.
pub const SP_HDR: u64 = 64;
/// Expected value of the [`SP_MAGIC`] word.
pub const SP_MAGIC_V: u64 = 0x4653_5049_4C4C_3031; // "FSPILL01"
                                                   // Per-slot header layout (64 B each).
/// Slot header: state word (`FREE`/`UNCOMMITTED`/`COMMITTED`).
pub const S_STATE: u64 = 0;
/// Slot header: owning transaction id.
pub const S_TID: u64 = 8;
/// Slot header: in-slot record-stream length.
pub const S_LEN: u64 = 16;
/// Slot header: overflow-region base address (0 = none).
pub const S_OVF_ADDR: u64 = 24;
/// Slot header: overflow record-stream length.
pub const S_OVF_LEN: u64 = 32;
/// Slot header size.
pub const SLOT_HDR: u64 = 64;

/// Upper bound on a plausible slot count; a window header claiming more
/// is corrupt (engines configure single-digit slot counts).
pub const MAX_WINDOW_SLOTS: u64 = 4096;

/// Upper bound on a single record's payload; a header claiming more is
/// damage, and decoding stops before allocating the claimed buffer.
pub const MAX_REC_DATA: u64 = 64 << 20;

/// A redo operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedoKind {
    /// In-place field update: write `data` at `off` in the tuple's data
    /// area.
    Update,
    /// Insert: write the whole row and (re)insert the index entry.
    Insert,
    /// Delete: raise the delete flag and remove the index entry.
    Delete,
    /// An old-version copy written to the NVM log by the Inp engines'
    /// multi-version mode (Table 1: "Logs (Old Versions)"). Charged like
    /// any record but skipped by replay: version chains are rebuilt
    /// empty after a crash.
    VersionCopy,
}

/// Record-kind code of the transaction marker written ahead of a
/// transaction's first spill record. Markers carry the owning TID in
/// their `key` word so the recovery-time spill scan can CRC-validate
/// the records that follow; they never appear in a slot's decoded
/// stream (the slot's overflow pointer skips them).
pub const REC_TXN_MARKER: u64 = 4;

impl RedoKind {
    fn code(self) -> u64 {
        match self {
            RedoKind::Update => 0,
            RedoKind::Insert => 1,
            RedoKind::Delete => 2,
            RedoKind::VersionCopy => 3,
        }
    }

    fn from_code(c: u64) -> Option<RedoKind> {
        match c {
            0 => Some(RedoKind::Update),
            1 => Some(RedoKind::Insert),
            2 => Some(RedoKind::Delete),
            3 => Some(RedoKind::VersionCopy),
            _ => None,
        }
    }
}

/// One redo record (borrowed payload, for appending).
#[derive(Debug, Clone, Copy)]
pub struct RedoRecord<'a> {
    /// Operation kind.
    pub kind: RedoKind,
    /// Table id.
    pub table: u32,
    /// NVM address of the tuple slot.
    pub tuple: u64,
    /// Packed index key (for insert/delete index maintenance).
    pub key: u64,
    /// Byte offset in the tuple data area (updates).
    pub off: u32,
    /// Payload: the new bytes (update) or the whole row (insert).
    pub data: &'a [u8],
}

/// One decoded redo record (owned payload, for replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoOwned {
    /// Operation kind.
    pub kind: RedoKind,
    /// Table id.
    pub table: u32,
    /// NVM address of the tuple slot.
    pub tuple: u64,
    /// Packed index key.
    pub key: u64,
    /// Byte offset in the tuple data area.
    pub off: u32,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// A decoded window slot.
#[derive(Debug, Clone)]
pub struct SlotImage {
    /// Slot state at crash.
    pub state: u64,
    /// TID of the owning transaction.
    pub tid: u64,
    /// The records, in append order. Damaged records and everything
    /// after them are excluded: only the valid prefix is salvaged.
    pub records: Vec<RedoOwned>,
    /// Records lost to a torn append (power cut mid-record).
    pub torn_records: u64,
    /// Records lost to media corruption (CRC/shape failure on a record
    /// the commit protocol had made durable).
    pub corrupt_records: u64,
    /// Spill extents this slot referenced that lie behind the region's
    /// durable tail — truncated behind a published checkpoint. Counted,
    /// non-fatal: the slot's in-window (and any pre-tail) prefix still
    /// replays; nothing is misclassified as corruption.
    pub spill_truncated_refs: u64,
}

impl SlotImage {
    /// Whether decoding hit any damage in this slot.
    pub fn damaged(&self) -> bool {
        self.torn_records + self.corrupt_records > 0
    }
}

/// Record header size: seven 8-byte words — kind, table, tuple, key,
/// off, data_len, CRC-32C (seeded with the slot's owning TID, over the
/// first 48 header bytes + unpadded payload, zero-extended to a word).
pub const REC_HDR: u64 = 56;

/// Per-window observability counters (feature `obs`).
#[cfg(feature = "obs")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowObs {
    /// Redo records appended.
    pub appends: u64,
    /// On-media bytes those appends occupied (header + padded payload).
    pub append_bytes: u64,
    /// Times the slot cursor wrapped back to slot 0.
    pub wraps: u64,
    /// Transactions that spilled into the overflow region.
    pub overflow_spills: u64,
    /// On-media bytes appended into the overflow region (header +
    /// padded payload of every spilled record).
    pub overflow_spill_bytes: u64,
    /// Appends rejected because the overflow region was full.
    pub full_stalls: u64,
}

#[inline]
fn pad8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// A snapshot of a [`LogWindow`]'s append cursor; see
/// [`LogWindow::mark`] / [`LogWindow::retract`].
#[derive(Debug, Clone, Copy)]
pub struct AppendMark {
    write_pos: u64,
    spill_tail: u64,
    in_overflow: bool,
    txn_spill_start: u64,
}

/// A per-thread log window.
///
/// Not `Sync`: exactly one worker thread appends; recovery reads windows
/// through [`read_window`] after all workers stopped.
///
/// HB audit: the cursors below are plain (non-atomic) fields, justified
/// entirely by that `!Sync` single-writer contract — no other thread
/// ever observes them, so there is no edge to provide. The *durable*
/// slot-state words they shadow are published through the device's
/// release/acquire `store_u64`/`load_u64`, which is what the
/// `log_window_claim_*` kernels in falcon-race sweep.
pub struct LogWindow {
    dev: PmemDevice,
    base: PAddr,
    slots: usize,
    slot_bytes: u64,
    flush_logs: bool,
    // Volatile cursors (reconstructed trivially: all slots FREE on open).
    cur: usize,
    // TID occupying the current slot. Seeds every record CRC so a torn
    // append can never pass off a stale but internally-valid record
    // left behind by the slot's previous occupant as this
    // transaction's (the bytes ring-buffer is reused across
    // transactions).
    cur_tid: u64,
    write_pos: u64,
    // Persistent overflow-spill log. `spill_tail` is the volatile
    // mirror of the region's durable SP_TAIL word; it survives across
    // transactions (append-only) and is reset only by checkpoint
    // truncation or recovery.
    spill: Option<PAddr>,
    spill_cap: u64,
    spill_tail: u64,
    spill_cap_cfg: u64,
    in_overflow: bool,
    // Data-area offset of the current transaction's first spill record
    // (just past its marker); valid while `in_overflow`.
    txn_spill_start: u64,
    alloc: NvmAllocator,
    #[cfg(feature = "obs")]
    obs: WindowObs,
}

/// Default overflow-spill cap when the engine does not configure one
/// (matches the pre-checkpoint lazily-allocated region size).
pub const DEFAULT_SPILL_CAP: u64 = 16 << 20;

impl LogWindow {
    /// Create a window for `thread`, registering its address in the
    /// catalog. `slot_bytes` is the per-transaction ring share;
    /// `flush_logs` selects the conventional-log behaviour.
    pub fn create(
        alloc: &NvmAllocator,
        catalog: &Catalog,
        thread: usize,
        slots: usize,
        slot_bytes: u64,
        flush_logs: bool,
        ctx: &mut MemCtx,
    ) -> Result<LogWindow, TxnError> {
        let total = W_HDR + slots as u64 * SLOT_HDR + slots as u64 * slot_bytes;
        let pages = total.div_ceil(PAGE_SIZE);
        let base = alloc.alloc_contiguous(pages, ctx)?;
        let dev = alloc.device().clone();
        dev.store_u64(base.add(W_SLOTS), slots as u64, ctx);
        dev.store_u64(base.add(W_SLOT_BYTES), slot_bytes, ctx);
        dev.store_u64(base.add(W_SPILL), 0, ctx);
        for s in 0..slots {
            let h = slot_hdr(base, s);
            dev.store_u64(h.add(S_STATE), FREE, ctx);
        }
        catalog.set_log_window(thread, base.0, ctx);
        Ok(LogWindow {
            dev,
            base,
            slots,
            slot_bytes,
            flush_logs,
            cur: 0,
            cur_tid: 0,
            write_pos: 0,
            spill: None,
            spill_cap: 0,
            spill_tail: 0,
            spill_cap_cfg: DEFAULT_SPILL_CAP,
            in_overflow: false,
            txn_spill_start: 0,
            alloc: alloc.clone(),
            #[cfg(feature = "obs")]
            obs: WindowObs::default(),
        })
    }

    /// Re-attach to an existing window after recovery (all slots must
    /// have been replayed and freed by then).
    pub fn reopen(
        alloc: &NvmAllocator,
        base: PAddr,
        flush_logs: bool,
        ctx: &mut MemCtx,
    ) -> LogWindow {
        let dev = alloc.device().clone();
        let slots = dev.load_u64(base.add(W_SLOTS), ctx) as usize;
        let slot_bytes = dev.load_u64(base.add(W_SLOT_BYTES), ctx);
        LogWindow {
            dev,
            base,
            slots,
            slot_bytes,
            flush_logs,
            cur: 0,
            cur_tid: 0,
            write_pos: 0,
            spill: None,
            spill_cap: 0,
            spill_tail: 0,
            spill_cap_cfg: DEFAULT_SPILL_CAP,
            in_overflow: false,
            txn_spill_start: 0,
            alloc: alloc.clone(),
            #[cfg(feature = "obs")]
            obs: WindowObs::default(),
        }
    }

    /// Set the overflow-spill backpressure cap (takes effect when the
    /// region is first allocated; an already-attached region keeps its
    /// formatted capacity).
    pub fn set_spill_cap(&mut self, cap: u64) {
        self.spill_cap_cfg = cap.max(4096);
    }

    /// Base address (as registered in the catalog).
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// Observability counters since the last [`LogWindow::obs_reset`].
    #[cfg(feature = "obs")]
    pub fn obs_counts(&self) -> WindowObs {
        self.obs
    }

    /// Zero the observability counters (e.g. after warmup).
    #[cfg(feature = "obs")]
    pub fn obs_reset(&mut self) {
        self.obs = WindowObs::default();
    }

    /// Begin a transaction: claim the next slot and stamp it
    /// `UNCOMMITTED` with `tid` (the "Before Update" block of
    /// Algorithm 1).
    pub fn begin_txn(&mut self, tid: u64, ctx: &mut MemCtx) {
        self.cur = (self.cur + 1) % self.slots;
        #[cfg(feature = "obs")]
        if self.cur == 0 {
            self.obs.wraps += 1;
        }
        let h = slot_hdr(self.base, self.cur);
        debug_assert_eq!(self.dev.load_u64(h.add(S_STATE), ctx), FREE);
        #[cfg(feature = "persist-check")]
        self.dev.trace_emit(Event::LogRange {
            thread: ctx.thread_id,
            addr: h.0,
            len: SLOT_HDR,
        });
        self.dev.store_u64(h.add(S_TID), tid, ctx);
        self.dev.store_u64(h.add(S_LEN), 0, ctx);
        self.dev.store_u64(h.add(S_OVF_ADDR), 0, ctx);
        self.dev.store_u64(h.add(S_OVF_LEN), 0, ctx);
        self.dev.store_u64(h.add(S_STATE), UNCOMMITTED, ctx);
        if self.flush_logs {
            self.dev.clwb(h, ctx);
        }
        self.cur_tid = tid;
        self.write_pos = 0;
        // The spill tail is NOT reset here: the region is an append-only
        // log across transactions, reclaimed only by checkpoint
        // truncation (or recovery).
        self.in_overflow = false;
    }

    fn payload_base(&self, slot: usize) -> PAddr {
        self.base
            .add(W_HDR + self.slots as u64 * SLOT_HDR + slot as u64 * self.slot_bytes)
    }

    /// Attach or lazily allocate the persistent spill region.
    fn ensure_spill(&mut self, ctx: &mut MemCtx) -> Result<(), TxnError> {
        if self.spill.is_some() {
            return Ok(());
        }
        let reg = self.dev.load_u64(self.base.add(W_SPILL), ctx);
        if reg != 0 {
            let rb = PAddr(reg);
            if self.dev.load_u64(rb.add(SP_MAGIC), ctx) == SP_MAGIC_V {
                self.spill = Some(rb);
                self.spill_cap = self.dev.load_u64(rb.add(SP_CAP), ctx);
                self.spill_tail = self.dev.load_u64(rb.add(SP_TAIL), ctx);
                return Ok(());
            }
            // Unreadable region header (should have been caught by
            // recovery): fall through and format a fresh region.
        }
        let cap = self.spill_cap_cfg;
        let pages = (SP_HDR + cap).div_ceil(PAGE_SIZE);
        let rb = self.alloc.alloc_contiguous(pages, ctx)?;
        self.dev.store_u64(rb.add(SP_CAP), cap, ctx);
        self.dev.store_u64(rb.add(SP_TAIL), 0, ctx);
        self.dev.store_u64(rb.add(SP_MAGIC), SP_MAGIC_V, ctx);
        self.dev.store_u64(self.base.add(W_SPILL), rb.0, ctx);
        if self.flush_logs {
            self.dev.clwb(rb, ctx);
            self.dev.clwb(self.base, ctx);
        }
        self.spill = Some(rb);
        self.spill_cap = cap;
        self.spill_tail = 0;
        Ok(())
    }

    /// Encode one record at `addr`: 6 header words, a CRC word, then
    /// the padded payload. The CRC is seeded with `seed_tid` and covers
    /// the 48 pre-CRC header bytes and the unpadded payload, so replay
    /// can tell a torn append from bit-rot — and a stale record left by
    /// a previous occupant of the same bytes fails the check instead of
    /// masquerading as this transaction's.
    #[allow(clippy::too_many_arguments)]
    fn write_record(
        &self,
        addr: PAddr,
        kind_code: u64,
        table: u32,
        tuple: u64,
        key: u64,
        off: u32,
        data: &[u8],
        seed_tid: u64,
        ctx: &mut MemCtx,
    ) {
        let mut hdr = [0u8; REC_HDR as usize];
        hdr[0..8].copy_from_slice(&kind_code.to_le_bytes());
        hdr[8..16].copy_from_slice(&u64::from(table).to_le_bytes());
        hdr[16..24].copy_from_slice(&tuple.to_le_bytes());
        hdr[24..32].copy_from_slice(&key.to_le_bytes());
        hdr[32..40].copy_from_slice(&u64::from(off).to_le_bytes());
        hdr[40..48].copy_from_slice(&(data.len() as u64).to_le_bytes());
        let st = crc::update(0xFFFF_FFFF, &seed_tid.to_le_bytes());
        let st = crc::update(st, &hdr[..48]);
        let sum = crc::update(st, data) ^ 0xFFFF_FFFF;
        hdr[48..56].copy_from_slice(&u64::from(sum).to_le_bytes());
        self.dev.write(addr, &hdr, ctx);
        if !data.is_empty() {
            self.dev.write(addr.add(REC_HDR), data, ctx);
        }
    }

    /// Append one redo record to the current transaction's log.
    pub fn append(&mut self, rec: &RedoRecord<'_>, ctx: &mut MemCtx) -> Result<(), TxnError> {
        let need = REC_HDR + pad8(rec.data.len() as u64);
        let h = slot_hdr(self.base, self.cur);
        let addr = if !self.in_overflow && self.write_pos + need <= self.slot_bytes {
            let a = self.payload_base(self.cur).add(self.write_pos);
            self.write_pos += need;
            self.dev.store_u64(h.add(S_LEN), self.write_pos, ctx);
            a
        } else {
            // Spill to the persistent overflow log (§5.5): allocated
            // lazily, appended across transactions, reclaimed by
            // checkpoint truncation.
            self.ensure_spill(ctx)?;
            let rb = self.spill.expect("just ensured");
            let data_base = rb.add(SP_HDR);
            let marker = if self.in_overflow { 0 } else { REC_HDR };
            if self.spill_tail + marker + need > self.spill_cap {
                // Cap reached: the caller drains the tail with a
                // checkpoint (bounded backpressure) or aborts — never
                // a panic, never a dropped record.
                #[cfg(feature = "obs")]
                {
                    self.obs.full_stalls += 1;
                }
                return Err(TxnError::LogOverflow);
            }
            if !self.in_overflow {
                // First spill of this transaction: write its marker so
                // the recovery-time tail scan can attribute and
                // CRC-validate the records that follow.
                let m = data_base.add(self.spill_tail);
                #[cfg(feature = "persist-check")]
                self.dev.trace_emit(Event::LogRange {
                    thread: ctx.thread_id,
                    addr: m.0,
                    len: REC_HDR,
                });
                self.write_record(
                    m,
                    REC_TXN_MARKER,
                    0,
                    0,
                    self.cur_tid,
                    0,
                    &[],
                    self.cur_tid,
                    ctx,
                );
                if self.flush_logs {
                    self.dev.flush_range(m, REC_HDR, ctx);
                }
                self.spill_tail += REC_HDR;
                self.txn_spill_start = self.spill_tail;
                self.in_overflow = true;
                self.dev.store_u64(
                    h.add(S_OVF_ADDR),
                    data_base.add(self.txn_spill_start).0,
                    ctx,
                );
                #[cfg(feature = "obs")]
                {
                    self.obs.overflow_spills += 1;
                    self.obs.overflow_spill_bytes += REC_HDR;
                }
            }
            #[cfg(feature = "obs")]
            {
                self.obs.overflow_spill_bytes += need;
            }
            let a = data_base.add(self.spill_tail);
            self.spill_tail += need;
            self.dev.store_u64(
                h.add(S_OVF_LEN),
                self.spill_tail - self.txn_spill_start,
                ctx,
            );
            a
        };
        #[cfg(feature = "persist-check")]
        self.dev.trace_emit(Event::LogRange {
            thread: ctx.thread_id,
            addr: addr.0,
            len: need,
        });
        self.write_record(
            addr,
            rec.kind.code(),
            rec.table,
            rec.tuple,
            rec.key,
            rec.off,
            rec.data,
            self.cur_tid,
            ctx,
        );
        if self.in_overflow {
            // Mirror the durable tail *after* the record bytes so the
            // tail never claims bytes that were not yet written.
            let rb = self.spill.expect("in_overflow implies region");
            self.dev.store_u64(rb.add(SP_TAIL), self.spill_tail, ctx);
        }
        if self.flush_logs {
            self.dev.flush_range(addr, need, ctx);
            if let Some(rb) = self.spill.filter(|_| self.in_overflow) {
                self.dev.clwb(rb, ctx);
            }
            // The length bump must be durable before the caller acts on
            // this record (publishing an index entry, say): a crash
            // after the entry's write-back but before the header's
            // would leave recovery an empty slot and nothing to undo.
            // Flushing bytes first keeps the torn-append invariant —
            // at any cut, `len` never covers bytes that missed media.
            self.dev.clwb(h, ctx);
        }
        #[cfg(feature = "obs")]
        {
            self.obs.appends += 1;
            self.obs.append_bytes += need;
        }
        Ok(())
    }

    /// Snapshot the append cursor so a just-appended record can be
    /// retracted if the operation it covers then fails to take effect
    /// (e.g. an insert whose index entry turns out to be a duplicate).
    pub fn mark(&self) -> AppendMark {
        AppendMark {
            write_pos: self.write_pos,
            spill_tail: self.spill_tail,
            in_overflow: self.in_overflow,
            txn_spill_start: self.txn_spill_start,
        }
    }

    /// Roll the append cursor back to `mark`, retracting every record
    /// appended after it. The slot is still `UNCOMMITTED`, so a crash
    /// on either side of the retraction is safe: the record describes
    /// an insert that was never published (its undo is a no-op). Spill
    /// bytes past the mark belong to the current transaction only (the
    /// single-writer invariant), so rolling the shared tail back cannot
    /// clip another transaction's records.
    pub fn retract(&mut self, mark: AppendMark, ctx: &mut MemCtx) {
        self.write_pos = mark.write_pos;
        self.spill_tail = mark.spill_tail;
        self.in_overflow = mark.in_overflow;
        self.txn_spill_start = mark.txn_spill_start;
        let h = slot_hdr(self.base, self.cur);
        self.dev.store_u64(h.add(S_LEN), self.write_pos, ctx);
        let ovf_len = if self.in_overflow {
            self.spill_tail - self.txn_spill_start
        } else {
            0
        };
        self.dev.store_u64(h.add(S_OVF_LEN), ovf_len, ctx);
        if let Some(rb) = self.spill {
            self.dev.store_u64(rb.add(SP_TAIL), self.spill_tail, ctx);
            if self.flush_logs {
                self.dev.clwb(rb, ctx);
            }
        }
        if self.flush_logs {
            self.dev.clwb(h, ctx);
        }
    }

    /// Commit: order the log writes, then stamp the slot `COMMITTED`
    /// (Algorithm 1, line 2).
    pub fn commit(&mut self, ctx: &mut MemCtx) {
        let h = slot_hdr(self.base, self.cur);
        // The fence orders log records before the commit state; in ADR
        // mode (conventional log) it also drains the clwb'd records.
        self.dev.sfence(ctx);
        #[cfg(feature = "persist-check")]
        self.dev.trace_emit(Event::CommitRecord {
            thread: ctx.thread_id,
            addr: h.add(S_STATE).0,
        });
        self.dev.store_u64(h.add(S_STATE), COMMITTED, ctx);
        if self.flush_logs {
            self.dev.clwb(h, ctx);
            self.dev.sfence(ctx);
        }
    }

    /// The in-place apply finished: the slot becomes reusable. The
    /// transaction is over, so its spill extent (if any) is no longer
    /// live — clearing `in_overflow` here is what lets a boundary
    /// checkpoint running right after `finish` truncate the tail.
    pub fn finish(&mut self, ctx: &mut MemCtx) {
        let h = slot_hdr(self.base, self.cur);
        self.dev.store_u64(h.add(S_STATE), FREE, ctx);
        self.in_overflow = false;
    }

    /// Abort: discard the log (the caller has already undone any index
    /// inserts).
    pub fn abort(&mut self, ctx: &mut MemCtx) {
        self.finish(ctx);
    }

    /// Whether the current transaction spilled to the overflow region.
    pub fn overflowed(&self) -> bool {
        self.in_overflow
    }

    /// Live bytes in the persistent spill tail (0 when nothing spilled
    /// since the last truncation).
    pub fn spill_tail(&self) -> u64 {
        self.spill_tail
    }

    /// The spill region's backpressure cap (configured value until the
    /// region is allocated, formatted value after).
    pub fn spill_cap(&self) -> u64 {
        if self.spill.is_some() {
            self.spill_cap
        } else {
            self.spill_cap_cfg
        }
    }

    /// Durably reset the spill tail to zero, reclaiming every spilled
    /// byte behind it. Only legal between transactions or while the
    /// current transaction has no spill records (`!overflowed()`): a
    /// mid-spill truncation would clip the live transaction's own
    /// extent. Returns the bytes reclaimed.
    pub fn truncate_spill(&mut self, ctx: &mut MemCtx) -> u64 {
        debug_assert!(!self.in_overflow, "cannot truncate under a live spill");
        if self.in_overflow || self.spill_tail == 0 {
            return 0;
        }
        let freed = self.spill_tail;
        self.spill_tail = 0;
        if let Some(rb) = self.spill {
            self.dev.store_u64(rb.add(SP_TAIL), 0, ctx);
            self.dev.clwb_if_adr(rb, ctx);
            self.dev.sfence(ctx);
        }
        freed
    }

    /// Compact the spill region mid-transaction: slide the current
    /// transaction's live extent (its marker plus records) down to
    /// offset 0, reclaiming the dead prefix left by already-finished
    /// transactions. This is the backpressure escape hatch when the cap
    /// is hit *after* this transaction already spilled — truncation
    /// would clip its own redo, but the dead prefix is still
    /// reclaimable. Returns the bytes reclaimed.
    ///
    /// Crash-safe at every cut: the live extent belongs to an
    /// `UNCOMMITTED` slot (recovery discards it), the dead prefix
    /// described transactions whose slots are already `FREE` (recovery
    /// never replays them), and the durable tail is only lowered after
    /// the moved bytes are in place.
    pub fn compact_spill(&mut self, ctx: &mut MemCtx) -> u64 {
        if !self.in_overflow {
            return self.truncate_spill(ctx);
        }
        // The live extent starts at this transaction's marker.
        let m0 = self.txn_spill_start - REC_HDR;
        if m0 == 0 {
            return 0;
        }
        let rb = self.spill.expect("in_overflow implies region");
        let data_base = rb.add(SP_HDR);
        let live = self.spill_tail - m0;
        // Slide down in chunks; destination is strictly below source,
        // so an ascending copy never reads clobbered bytes.
        let mut buf = [0u8; 4096];
        let mut off = 0;
        while off < live {
            let n = (live - off).min(buf.len() as u64) as usize;
            self.dev.read(data_base.add(m0 + off), &mut buf[..n], ctx);
            #[cfg(feature = "persist-check")]
            self.dev.trace_emit(Event::LogRange {
                thread: ctx.thread_id,
                addr: data_base.add(off).0,
                len: n as u64,
            });
            self.dev.write(data_base.add(off), &buf[..n], ctx);
            if self.flush_logs {
                self.dev.flush_range(data_base.add(off), n as u64, ctx);
            }
            off += n as u64;
        }
        self.spill_tail = live;
        self.txn_spill_start = REC_HDR;
        // Re-point the slot's overflow extent at the new location.
        let h = slot_hdr(self.base, self.cur);
        self.dev
            .store_u64(h.add(S_OVF_ADDR), data_base.add(REC_HDR).0, ctx);
        // Lower the durable tail only after the bytes moved.
        self.dev.store_u64(rb.add(SP_TAIL), live, ctx);
        self.dev.clwb_if_adr(rb, ctx);
        self.dev.sfence(ctx);
        m0
    }
}

impl core::fmt::Debug for LogWindow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LogWindow")
            .field("base", &self.base)
            .field("slots", &self.slots)
            .field("slot_bytes", &self.slot_bytes)
            .finish()
    }
}

#[inline]
fn slot_hdr(base: PAddr, slot: usize) -> PAddr {
    base.add(W_HDR + slot as u64 * SLOT_HDR)
}

/// Mark every slot of a window `FREE` (recovery calls this after
/// replaying/discarding the slots, so a reopened engine starts from a
/// clean window).
pub fn clear_window(dev: &PmemDevice, base: PAddr, ctx: &mut MemCtx) {
    let slots = dev.load_u64(base.add(W_SLOTS), ctx) as usize;
    for s in 0..slots {
        dev.store_u64(slot_hdr(base, s).add(S_STATE), FREE, ctx);
    }
}

/// Payload base of `slot` in a window with the given geometry (public
/// so crash tests can aim targeted corruption at record bytes).
pub fn slot_payload(base: PAddr, slots: u64, slot_bytes: u64, slot: u64) -> PAddr {
    base.add(W_HDR + slots * SLOT_HDR + slot * slot_bytes)
}

fn corrupt(msg: String) -> EngineError {
    EngineError::Corrupt(msg)
}

/// Decode a whole window from NVM (recovery path). Reads bypass the
/// cache model via `media`-accurate CPU state — after a crash both images
/// agree, so plain reads through the cost model are used to account the
/// (small) recovery cost honestly.
///
/// The window geometry is validated before anything is dereferenced: a
/// corrupt header (absurd slot count, extent beyond the device) yields
/// [`EngineError::Corrupt`] instead of a panic or wild reads. Damage
/// *inside* a slot's record stream is non-fatal: the valid prefix is
/// salvaged and the loss is counted in [`SlotImage::torn_records`] /
/// [`SlotImage::corrupt_records`].
pub fn read_window(
    dev: &PmemDevice,
    base: PAddr,
    ctx: &mut MemCtx,
) -> Result<Vec<SlotImage>, EngineError> {
    let cap = dev.capacity();
    if !base.is_aligned(8) || base.0.checked_add(W_HDR).is_none_or(|end| end > cap) {
        return Err(corrupt(format!("log window base {base} out of bounds")));
    }
    let slots = dev.load_u64(base.add(W_SLOTS), ctx);
    let slot_bytes = dev.load_u64(base.add(W_SLOT_BYTES), ctx);
    if slots == 0 || slots > MAX_WINDOW_SLOTS {
        return Err(corrupt(format!(
            "log window at {base} claims {slots} slots (max {MAX_WINDOW_SLOTS})"
        )));
    }
    let extent = slot_bytes
        .checked_add(SLOT_HDR)
        .and_then(|per| per.checked_mul(slots))
        .and_then(|body| body.checked_add(W_HDR))
        .and_then(|total| base.0.checked_add(total));
    if extent.is_none_or(|end| end > cap) {
        return Err(corrupt(format!(
            "log window at {base} ({slots} slots x {slot_bytes} B) exceeds device capacity {cap}"
        )));
    }
    // The persistent spill region, when present and readable:
    // (data base, durable tail, data capacity). A damaged region header
    // falls back to the legacy per-slot bounds checks — salvage, never
    // a wild read.
    let spill_region = read_spill_region(dev, base, ctx);
    let mut out = Vec::with_capacity(slots as usize);
    for s in 0..slots {
        let h = slot_hdr(base, s as usize);
        let state = dev.load_u64(h.add(S_STATE), ctx);
        let tid = dev.load_u64(h.add(S_TID), ctx);
        let mut len = dev.load_u64(h.add(S_LEN), ctx);
        let ovf_addr = dev.load_u64(h.add(S_OVF_ADDR), ctx);
        let ovf_len = dev.load_u64(h.add(S_OVF_LEN), ctx);
        let mut records = Vec::new();
        let mut torn = 0u64;
        let mut corrupt_n = 0u64;
        let mut truncated = 0u64;
        match state {
            FREE => {}
            UNCOMMITTED | COMMITTED => {
                let committed = state == COMMITTED;
                if len > slot_bytes {
                    // The length word itself is damaged; clamp and let
                    // the CRCs find the true valid prefix.
                    corrupt_n += 1;
                    len = slot_bytes;
                }
                let payload = slot_payload(base, slots, slot_bytes, s);
                let d = decode_records(dev, payload, len, tid, committed, &mut records, ctx);
                torn += d.torn;
                corrupt_n += d.corrupt;
                if ovf_addr != 0 {
                    let mut handled = false;
                    if let Some((data_base, tail, sp_cap)) = spill_region {
                        let in_region = ovf_addr >= data_base.0
                            && ovf_addr
                                .checked_sub(data_base.0)
                                .is_some_and(|o| o < sp_cap);
                        if in_region {
                            // Decode only up to the region's durable
                            // tail: an extent reaching past it was
                            // truncated behind a published checkpoint —
                            // counted, non-fatal, and distinct from
                            // corruption.
                            let off = ovf_addr - data_base.0;
                            let avail = tail.saturating_sub(off);
                            let use_len = ovf_len.min(avail);
                            if ovf_len > avail {
                                truncated += 1;
                            }
                            let d = decode_records(
                                dev,
                                PAddr(ovf_addr),
                                use_len,
                                tid,
                                committed,
                                &mut records,
                                ctx,
                            );
                            torn += d.torn;
                            corrupt_n += d.corrupt;
                            handled = true;
                        }
                    }
                    if !handled {
                        let ovf_ok = ovf_addr.is_multiple_of(8)
                            && ovf_len <= cap
                            && ovf_addr.checked_add(ovf_len).is_some_and(|end| end <= cap);
                        if ovf_ok {
                            let d = decode_records(
                                dev,
                                PAddr(ovf_addr),
                                ovf_len,
                                tid,
                                committed,
                                &mut records,
                                ctx,
                            );
                            torn += d.torn;
                            corrupt_n += d.corrupt;
                        } else {
                            // Overflow pointer is garbage: everything that
                            // spilled is unrecoverable.
                            corrupt_n += 1;
                        }
                    }
                }
            }
            _ => {
                // A state word outside the protocol: the slot header was
                // hit by media corruption. Nothing can be trusted.
                corrupt_n += 1;
            }
        }
        out.push(SlotImage {
            state,
            tid,
            records,
            torn_records: torn,
            corrupt_records: corrupt_n,
            spill_truncated_refs: truncated,
        });
    }
    Ok(out)
}

/// Read and validate a window's spill-region header. Returns
/// `(data base, durable tail, data capacity)` when the region exists
/// and its header is internally consistent; `None` otherwise.
fn read_spill_region(dev: &PmemDevice, base: PAddr, ctx: &mut MemCtx) -> Option<(PAddr, u64, u64)> {
    let cap = dev.capacity();
    // The window base itself may be garbage (scan_spill can run before
    // read_window's geometry validation): bounds-check before loading.
    if !base.is_aligned(8) || base.0.checked_add(W_HDR).is_none_or(|end| end > cap) {
        return None;
    }
    let reg = dev.load_u64(base.add(W_SPILL), ctx);
    if reg == 0 || !reg.is_multiple_of(8) || reg.checked_add(SP_HDR).is_none_or(|e| e > cap) {
        return None;
    }
    let rb = PAddr(reg);
    if dev.load_u64(rb.add(SP_MAGIC), ctx) != SP_MAGIC_V {
        return None;
    }
    let sp_cap = dev.load_u64(rb.add(SP_CAP), ctx);
    let tail = dev.load_u64(rb.add(SP_TAIL), ctx);
    let extent_ok = tail <= sp_cap
        && reg
            .checked_add(SP_HDR)
            .and_then(|d| d.checked_add(sp_cap))
            .is_some_and(|end| end <= cap);
    if !extent_ok {
        return None;
    }
    Some((rb.add(SP_HDR), tail, sp_cap))
}

/// What a recovery-time spill-tail scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillScan {
    /// Bytes walked (marker + record headers + padded payloads).
    pub bytes: u64,
    /// Records validated (including transaction markers).
    pub records: u64,
    /// Durable tail of the region at scan time.
    pub tail: u64,
    /// Whether the walk stopped at damage before reaching the tail.
    pub damaged: bool,
}

/// Walk the spill region of the window at `base` from the checkpoint
/// `mark` to the durable tail, CRC-validating every record. This is the
/// bounded O(active-window) part of recovery: everything behind `mark`
/// was captured by a published checkpoint and is never read.
///
/// Scan-start rule: `tail >= mark` means no truncation happened since
/// the mark was published — scan `[mark, tail)`. `tail < mark` means
/// the tail was truncated after the publish (crash between publish and
/// the next checkpoint) — the live bytes start at 0, so scan
/// `[0, tail)`. Either way the scan is bounded by the active tail.
///
/// Returns `None` when the window has no spill region (or its header is
/// unreadable — the caller falls back to per-slot salvage).
pub fn scan_spill(dev: &PmemDevice, base: PAddr, mark: u64, ctx: &mut MemCtx) -> Option<SpillScan> {
    let (data_base, tail, _cap) = read_spill_region(dev, base, ctx)?;
    let start = if tail >= mark { mark } else { 0 };
    let mut scan = SpillScan {
        tail,
        ..SpillScan::default()
    };
    let mut pos = start;
    let mut cur_tid: Option<u64> = None;
    while pos < tail {
        if pos + REC_HDR > tail {
            scan.damaged = true;
            break;
        }
        let mut hdr = [0u8; REC_HDR as usize];
        dev.read(data_base.add(pos), &mut hdr, ctx);
        let word = |i: usize| u64::from_le_bytes(hdr[i * 8..i * 8 + 8].try_into().unwrap());
        let kind_code = word(0);
        let data_len = word(5);
        let stored_crc = word(6);
        if data_len > MAX_REC_DATA || pos + REC_HDR + pad8(data_len) > tail {
            scan.damaged = true;
            break;
        }
        let seed = if kind_code == REC_TXN_MARKER {
            // A marker's CRC is seeded with its own TID (carried in the
            // key word), making it self-validating.
            word(3)
        } else {
            match cur_tid {
                Some(t) => t,
                None => {
                    // Data record with no preceding marker: the stream
                    // does not start at a transaction boundary.
                    scan.damaged = true;
                    break;
                }
            }
        };
        let mut data = vec![0u8; data_len as usize];
        if data_len > 0 {
            dev.read(data_base.add(pos + REC_HDR), &mut data, ctx);
        }
        let st = crc::update(0xFFFF_FFFF, &seed.to_le_bytes());
        let st = crc::update(st, &hdr[..48]);
        if u64::from(crc::update(st, &data) ^ 0xFFFF_FFFF) != stored_crc {
            scan.damaged = true;
            break;
        }
        if kind_code == REC_TXN_MARKER {
            cur_tid = Some(word(3));
        } else if RedoKind::from_code(kind_code).is_none() {
            scan.damaged = true;
            break;
        }
        scan.records += 1;
        let sz = REC_HDR + pad8(data_len);
        scan.bytes += sz;
        pos += sz;
    }
    Some(scan)
}

/// Durably reset the spill tail of the window at `base` to zero
/// (recovery calls this after replay, alongside [`clear_window`]: every
/// replayed slot is freed, so all spilled bytes are dead). Returns the
/// bytes reclaimed. A missing or unreadable region reclaims nothing.
pub fn reset_spill_tail(dev: &PmemDevice, base: PAddr, ctx: &mut MemCtx) -> u64 {
    let Some((data_base, tail, _cap)) = read_spill_region(dev, base, ctx) else {
        return 0;
    };
    let rb = PAddr(data_base.0 - SP_HDR);
    dev.store_u64(rb.add(SP_TAIL), 0, ctx);
    tail
}

/// Damage found while decoding one record stream.
#[derive(Debug, Clone, Copy, Default)]
struct StreamDamage {
    torn: u64,
    corrupt: u64,
}

/// Decode records until the stream ends or damage is found; only the
/// valid prefix reaches `out`.
///
/// Classification: in an **uncommitted** slot any damage is *torn* — the
/// power cut interrupted an append, the expected (and harmless) case. In
/// a **committed** slot every record was durable before the commit state
/// could be, so mid-stream damage is *corruption* (bit-rot); only damage
/// on the final claimed record is still classified torn, covering a
/// commit word that raced its last append to the media (the ADR
/// small-window hazard falcon-check's R1 rule flags).
fn decode_records(
    dev: &PmemDevice,
    base: PAddr,
    len: u64,
    tid: u64,
    committed: bool,
    out: &mut Vec<RedoOwned>,
    ctx: &mut MemCtx,
) -> StreamDamage {
    let mut dmg = StreamDamage::default();
    let mut pos = 0u64;
    while pos < len {
        if pos + REC_HDR > len {
            // Trailing bytes too short for a header: torn append.
            dmg.torn += 1;
            break;
        }
        let mut hdr = [0u8; REC_HDR as usize];
        dev.read(base.add(pos), &mut hdr, ctx);
        let word = |i: usize| u64::from_le_bytes(hdr[i * 8..i * 8 + 8].try_into().unwrap());
        let kind = RedoKind::from_code(word(0));
        let data_len = word(5);
        let stored_crc = word(6);
        // `extent_ok` bounds the payload before any allocation.
        let extent_ok = data_len <= MAX_REC_DATA && pos + REC_HDR + pad8(data_len) <= len;
        let mut data = Vec::new();
        let mut ok = extent_ok && kind.is_some();
        if ok {
            data = vec![0u8; data_len as usize];
            if data_len > 0 {
                dev.read(base.add(pos + REC_HDR), &mut data, ctx);
            }
            let st = crc::update(0xFFFF_FFFF, &tid.to_le_bytes());
            let st = crc::update(st, &hdr[..48]);
            ok = u64::from(crc::update(st, &data) ^ 0xFFFF_FFFF) == stored_crc;
        }
        if !ok {
            let final_rec = !extent_ok || pos + REC_HDR + pad8(data_len) >= len;
            if !committed || final_rec {
                dmg.torn += 1;
            } else {
                dmg.corrupt += 1;
            }
            break;
        }
        out.push(RedoOwned {
            kind: kind.expect("checked"),
            table: word(1) as u32,
            tuple: word(2),
            key: word(3),
            off: word(4) as u32,
            data,
        });
        pos += REC_HDR + pad8(data_len);
    }
    dmg
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_storage::layout::format;
    use pmem_sim::SimConfig;

    fn setup() -> (NvmAllocator, Catalog, MemCtx) {
        let dev = PmemDevice::new(SimConfig::small().with_capacity(128 << 20)).unwrap();
        format(&dev).unwrap();
        let mut ctx = MemCtx::new(0);
        let cat = Catalog::open(dev.clone(), &mut ctx).unwrap();
        (NvmAllocator::new(dev), cat, ctx)
    }

    fn rec(kind: RedoKind, tuple: u64, data: &[u8]) -> RedoRecord<'_> {
        RedoRecord {
            kind,
            table: 1,
            tuple,
            key: tuple * 10,
            off: 4,
            data,
        }
    }

    #[test]
    fn append_commit_decode_roundtrip() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 4096, false, &mut ctx).unwrap();
        w.begin_txn(0x4200, &mut ctx);
        w.append(&rec(RedoKind::Update, 100, b"hello--1"), &mut ctx)
            .unwrap();
        w.append(&rec(RedoKind::Insert, 200, b"row-bytes-here"), &mut ctx)
            .unwrap();
        w.append(&rec(RedoKind::Delete, 300, b""), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);

        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        assert_eq!(slots.len(), 3);
        let committed: Vec<_> = slots.iter().filter(|s| s.state == COMMITTED).collect();
        assert_eq!(committed.len(), 1);
        let s = committed[0];
        assert_eq!(s.tid, 0x4200);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0].kind, RedoKind::Update);
        assert_eq!(s.records[0].data, b"hello--1");
        assert_eq!(s.records[0].off, 4);
        assert_eq!(s.records[1].kind, RedoKind::Insert);
        assert_eq!(s.records[1].data, b"row-bytes-here");
        assert_eq!(s.records[1].tuple, 200);
        assert_eq!(s.records[1].key, 2000);
        assert_eq!(s.records[2].kind, RedoKind::Delete);
    }

    #[test]
    fn slots_cycle_and_free() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        for t in 0..10u64 {
            w.begin_txn(t, &mut ctx);
            w.append(&rec(RedoKind::Update, t, b"12345678"), &mut ctx)
                .unwrap();
            w.commit(&mut ctx);
            w.finish(&mut ctx);
        }
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        assert!(slots.iter().all(|s| s.state == FREE));
    }

    #[test]
    fn uncommitted_slot_visible_after_crash() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        w.begin_txn(7, &mut ctx);
        w.append(&rec(RedoKind::Insert, 1, b"abcdefgh"), &mut ctx)
            .unwrap();
        // No commit: crash now.
        alloc.device().crash();
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let unc: Vec<_> = slots.iter().filter(|s| s.state == UNCOMMITTED).collect();
        assert_eq!(unc.len(), 1);
        assert_eq!(unc[0].records.len(), 1, "records recoverable for undo");
    }

    #[test]
    fn window_contents_survive_eadr_crash_without_flush() {
        // The core D1 claim: no clwb anywhere, yet the committed log is
        // durable because the cache is in the persistence domain.
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 4096, false, &mut ctx).unwrap();
        w.begin_txn(99, &mut ctx);
        w.append(&rec(RedoKind::Update, 5, b"durable!"), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);
        assert_eq!(ctx.stats.clwb_issued, 0, "small window never flushes");
        alloc.device().crash();
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let c: Vec<_> = slots.iter().filter(|s| s.state == COMMITTED).collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].records[0].data, b"durable!");
    }

    #[test]
    fn conventional_log_flushes() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 64 << 10, true, &mut ctx).unwrap();
        w.begin_txn(1, &mut ctx);
        w.append(&rec(RedoKind::Update, 5, &[7u8; 256]), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);
        assert!(ctx.stats.clwb_issued > 0, "NvmLog flushes records");
        assert!(ctx.stats.sfences >= 2);
    }

    #[test]
    fn overflow_spills_and_replays() {
        let (alloc, cat, mut ctx) = setup();
        // Slot of 1 KB; a 4 KB record must spill.
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        w.begin_txn(11, &mut ctx);
        let small = vec![1u8; 512];
        let big = vec![2u8; 4096];
        w.append(&rec(RedoKind::Update, 1, &small), &mut ctx)
            .unwrap();
        assert!(!w.overflowed());
        w.append(&rec(RedoKind::Update, 2, &big), &mut ctx).unwrap();
        assert!(w.overflowed());
        w.append(&rec(RedoKind::Update, 3, &small), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);

        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[1].data, big);
        assert_eq!(s.records[2].data, small);
        assert_eq!(
            s.records.iter().map(|r| r.tuple).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    /// A committed slot with one valid record and a second, torn one.
    fn one_committed_slot(slot_bytes: u64) -> (NvmAllocator, LogWindow, MemCtx) {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, slot_bytes, false, &mut ctx).unwrap();
        w.begin_txn(0x4200, &mut ctx);
        w.append(&rec(RedoKind::Update, 100, b"first--1"), &mut ctx)
            .unwrap();
        w.append(&rec(RedoKind::Update, 200, b"second-2"), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);
        (alloc, w, ctx)
    }

    #[test]
    fn torn_final_record_in_committed_slot_salvages_prefix() {
        // The acceptance case: the commit word raced the last append to
        // the media, so the final record's bytes are garbage. Replay must
        // classify it *torn*, keep the valid prefix, and not panic.
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        // begin_txn advanced cur 0 → 1: records live in slot 1's payload.
        let payload = slot_payload(w.base(), 3, 4096, 1);
        let rec1_len = REC_HDR + pad8(8);
        // Smash the second record's payload bytes (CRC now mismatches).
        alloc
            .device()
            .write(payload.add(rec1_len + REC_HDR), &[0xEE; 8], &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert_eq!(s.torn_records, 1);
        assert_eq!(s.corrupt_records, 0);
        assert!(s.damaged());
        assert_eq!(s.records.len(), 1, "valid prefix salvaged");
        assert_eq!(s.records[0].data, b"first--1");
    }

    #[test]
    fn midstream_damage_in_committed_slot_is_corruption() {
        // Bit-rot inside a record the commit protocol had made durable:
        // not a torn tail, a media fault.
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        let payload = slot_payload(w.base(), 3, 4096, 1);
        alloc
            .device()
            .write(payload.add(REC_HDR), &[0xEE], &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert_eq!(s.corrupt_records, 1);
        assert_eq!(s.torn_records, 0);
        assert!(s.records.is_empty(), "decoding stops at the damage");
    }

    #[test]
    fn damage_in_uncommitted_slot_is_always_torn() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 4096, false, &mut ctx).unwrap();
        w.begin_txn(5, &mut ctx);
        w.append(&rec(RedoKind::Update, 1, b"aaaaaaaa"), &mut ctx)
            .unwrap();
        w.append(&rec(RedoKind::Update, 2, b"bbbbbbbb"), &mut ctx)
            .unwrap();
        // No commit. Smash the *first* record: still torn, not corrupt —
        // nothing in an uncommitted slot was promised durable.
        let payload = slot_payload(w.base(), 3, 4096, 1);
        alloc.device().write(payload.add(8), &[0xEE], &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == UNCOMMITTED).unwrap();
        assert_eq!(s.torn_records, 1);
        assert_eq!(s.corrupt_records, 0);
    }

    #[test]
    fn truncated_length_word_is_clamped_not_panicked() {
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        let h = slot_hdr(w.base(), 1);
        // Claim a stream far longer than the slot.
        alloc.device().store_u64(h.add(S_LEN), 4096 * 100, &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert!(s.corrupt_records >= 1, "length damage counted");
        assert_eq!(s.records.len(), 2, "real records still decode");
    }

    #[test]
    fn unknown_state_word_is_counted_not_decoded() {
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        let h = slot_hdr(w.base(), 1);
        alloc.device().store_u64(h.add(S_STATE), 0xDEAD, &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == 0xDEAD).unwrap();
        assert_eq!(s.corrupt_records, 1);
        assert!(s.records.is_empty());
    }

    #[test]
    fn absurd_window_header_is_an_error_not_a_panic() {
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        let dev = alloc.device();
        // Slot count beyond any plausible configuration.
        dev.store_u64(w.base().add(W_SLOTS), 1 << 40, &mut ctx);
        assert!(read_window(dev, w.base(), &mut ctx).is_err());
        // Geometry that claims more bytes than the device holds.
        dev.store_u64(w.base().add(W_SLOTS), 3, &mut ctx);
        dev.store_u64(w.base().add(W_SLOT_BYTES), u64::MAX / 4, &mut ctx);
        assert!(read_window(dev, w.base(), &mut ctx).is_err());
        // Unaligned / out-of-bounds base.
        assert!(read_window(dev, PAddr(3), &mut ctx).is_err());
        assert!(read_window(dev, PAddr(dev.capacity()), &mut ctx).is_err());
    }

    #[test]
    fn garbage_overflow_pointer_is_corruption_not_a_wild_read() {
        let (alloc, w, mut ctx) = one_committed_slot(4096);
        let h = slot_hdr(w.base(), 1);
        let dev = alloc.device();
        dev.store_u64(h.add(S_OVF_ADDR), dev.capacity() + 8, &mut ctx);
        dev.store_u64(h.add(S_OVF_LEN), 1 << 30, &mut ctx);
        let slots = read_window(dev, w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert!(s.corrupt_records >= 1);
        assert_eq!(s.records.len(), 2, "in-slot records still salvaged");
    }

    #[test]
    fn spill_tail_persists_across_txns_and_truncates() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        let big = vec![3u8; 2048];
        let per_txn = REC_HDR + (REC_HDR + pad8(2048)); // marker + record
        for t in 1..=3u64 {
            w.begin_txn(t, &mut ctx);
            w.append(&rec(RedoKind::Update, t, &big), &mut ctx).unwrap();
            w.commit(&mut ctx);
            w.finish(&mut ctx);
            assert_eq!(w.spill_tail(), t * per_txn, "tail accumulates");
        }
        // The durable mirror agrees.
        let reg = alloc.device().load_u64(w.base().add(W_SPILL), &mut ctx);
        assert_ne!(reg, 0);
        assert_eq!(
            alloc.device().load_u64(PAddr(reg).add(SP_TAIL), &mut ctx),
            3 * per_txn
        );
        // Truncate between transactions: durable tail drops to zero.
        let freed = w.truncate_spill(&mut ctx);
        assert_eq!(freed, 3 * per_txn);
        assert_eq!(w.spill_tail(), 0);
        assert_eq!(
            alloc.device().load_u64(PAddr(reg).add(SP_TAIL), &mut ctx),
            0
        );
        // Truncating an empty tail reclaims nothing.
        assert_eq!(w.truncate_spill(&mut ctx), 0);
    }

    #[test]
    fn spill_cap_rejects_with_typed_error_never_drops() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        w.set_spill_cap(4096);
        w.begin_txn(1, &mut ctx);
        let big = vec![5u8; 2048];
        w.append(&rec(RedoKind::Update, 1, &big), &mut ctx).unwrap();
        assert!(w.overflowed());
        // A second big record exceeds the 4096-byte cap.
        let before = w.mark();
        let err = w.append(&rec(RedoKind::Update, 2, &big), &mut ctx);
        assert!(matches!(err, Err(TxnError::LogOverflow)));
        // The cursor did not move: nothing was half-written.
        let after = w.mark();
        assert_eq!(before.spill_tail, after.spill_tail);
        assert_eq!(before.write_pos, after.write_pos);
        // The first record is still intact and replayable.
        w.commit(&mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].data, big);
    }

    #[test]
    fn truncated_spill_ref_is_counted_not_corruption() {
        // Satellite: a COMMITTED slot whose overflow extent lies behind
        // the durable tail (truncated behind a published checkpoint)
        // must surface as spill_truncated_refs — not corruption — and
        // the in-slot prefix must still be salvaged.
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        w.begin_txn(9, &mut ctx);
        let small = vec![1u8; 256];
        let big = vec![2u8; 2048];
        w.append(&rec(RedoKind::Update, 1, &small), &mut ctx)
            .unwrap();
        w.append(&rec(RedoKind::Update, 2, &big), &mut ctx).unwrap();
        w.commit(&mut ctx);
        // Simulate a checkpoint-truncated tail with the slot still
        // COMMITTED (the crash window between publish and finish of a
        // later state): durably zero SP_TAIL behind the slot's back.
        let reg = alloc.device().load_u64(w.base().add(W_SPILL), &mut ctx);
        alloc
            .device()
            .store_u64(PAddr(reg).add(SP_TAIL), 0, &mut ctx);
        let slots = read_window(alloc.device(), w.base(), &mut ctx).unwrap();
        let s = slots.iter().find(|s| s.state == COMMITTED).unwrap();
        assert_eq!(s.spill_truncated_refs, 1, "truncated ref counted");
        assert_eq!(s.corrupt_records, 0, "not misclassified as corruption");
        assert_eq!(s.torn_records, 0);
        assert_eq!(s.records.len(), 1, "in-slot prefix salvaged");
        assert_eq!(s.records[0].data, small);
    }

    #[test]
    fn scan_spill_walks_markers_and_applies_mark_rule() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        let big = vec![7u8; 2048];
        let per_txn = REC_HDR + (REC_HDR + pad8(2048));
        for t in 1..=2u64 {
            w.begin_txn(t, &mut ctx);
            w.append(&rec(RedoKind::Update, t, &big), &mut ctx).unwrap();
            w.commit(&mut ctx);
            w.finish(&mut ctx);
        }
        let dev = alloc.device();
        // Full scan from mark 0: 2 markers + 2 records.
        let s = scan_spill(dev, w.base(), 0, &mut ctx).unwrap();
        assert!(!s.damaged);
        assert_eq!(s.records, 4);
        assert_eq!(s.bytes, 2 * per_txn);
        // Scan from the first transaction's end: 1 marker + 1 record.
        let s = scan_spill(dev, w.base(), per_txn, &mut ctx).unwrap();
        assert!(!s.damaged);
        assert_eq!(s.records, 2);
        assert_eq!(s.bytes, per_txn);
        // A mark beyond the tail means the tail was truncated after the
        // publish: the scan restarts from 0 and walks the live bytes.
        let s = scan_spill(dev, w.base(), 10 * per_txn, &mut ctx).unwrap();
        assert_eq!(s.records, 4, "tail < mark rescans from zero");
        // Bit-rot inside a record stops the walk and flags damage.
        let reg = dev.load_u64(w.base().add(W_SPILL), &mut ctx);
        let data0 = PAddr(reg).add(SP_HDR + REC_HDR + REC_HDR);
        dev.write(data0, &[0xEE], &mut ctx);
        let s = scan_spill(dev, w.base(), 0, &mut ctx).unwrap();
        assert!(s.damaged);
        assert_eq!(s.records, 1, "only the first marker validates");
        // A mid-tail mark that lands inside a record (no leading
        // marker) is detected, not misread.
        let s = scan_spill(dev, w.base(), 8, &mut ctx).unwrap();
        assert!(s.damaged);
    }

    #[test]
    fn reset_spill_tail_reclaims_and_reports() {
        let (alloc, cat, mut ctx) = setup();
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 1024, false, &mut ctx).unwrap();
        let dev = alloc.device();
        // No region yet: nothing to reclaim, no panic.
        assert_eq!(reset_spill_tail(dev, w.base(), &mut ctx), 0);
        w.begin_txn(1, &mut ctx);
        w.append(&rec(RedoKind::Update, 1, &vec![1u8; 2048]), &mut ctx)
            .unwrap();
        w.commit(&mut ctx);
        w.finish(&mut ctx);
        let tail = w.spill_tail();
        assert!(tail > 0);
        assert_eq!(reset_spill_tail(dev, w.base(), &mut ctx), tail);
        assert_eq!(reset_spill_tail(dev, w.base(), &mut ctx), 0);
        // A garbage window base reclaims nothing (bounds-guarded).
        assert_eq!(reset_spill_tail(dev, PAddr(dev.capacity()), &mut ctx), 0);
    }

    #[test]
    fn small_window_stays_cache_resident() {
        // Run many transactions through a small window while streaming
        // unrelated data; the window must cause ~no media writes.
        let dev = PmemDevice::new(SimConfig::small().with_capacity(256 << 20)).unwrap();
        format(&dev).unwrap();
        let mut ctx = MemCtx::new(0);
        let cat = Catalog::open(dev.clone(), &mut ctx).unwrap();
        let alloc = NvmAllocator::new(dev.clone());
        let mut w = LogWindow::create(&alloc, &cat, 0, 3, 8192, false, &mut ctx).unwrap();
        // A large streaming region to pressure the cache.
        let stream = alloc.alloc_contiguous(8, &mut ctx).unwrap();
        ctx.reset();
        let payload = [9u8; 128];
        for t in 0..2000u64 {
            w.begin_txn(t, &mut ctx);
            for r in 0..4u64 {
                w.append(&rec(RedoKind::Update, t * 4 + r, &payload), &mut ctx)
                    .unwrap();
            }
            w.commit(&mut ctx);
            w.finish(&mut ctx);
            // Stream through 4 KB of data between transactions.
            let off = (t * 4096) % (8 * PAGE_SIZE - 4096);
            dev.write(stream.add(off), &[1u8; 512], &mut ctx);
        }
        // The stream dirtied ~2000 × 8 lines; window lines must be a tiny
        // fraction of evictions. Compare media writes to a generous bound
        // proportional to the stream traffic alone.
        let stream_lines = 2000 * (512 / 64);
        assert!(
            ctx.stats.media_block_writes < stream_lines * 2,
            "window logging must not add media writes: {} blocks for ~{} stream lines",
            ctx.stats.media_block_writes,
            stream_lines
        );
    }
}
