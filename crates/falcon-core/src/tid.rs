//! Transaction-id generation and the active-transaction table.
//!
//! The paper generates TIDs as `(timestamp << 8) | thread_id` (§5.2.1,
//! footnote 2), using the hardware clock. We use a global monotonic
//! atomic counter as the timestamp source (the substitution is noted in
//! DESIGN.md); the TID format and the recovery requirement — TIDs after
//! a crash must exceed all TIDs before it — are preserved: recovery scans
//! the persistent logs for the largest timestamp and restarts the counter
//! above it, exactly the paper's fallback path for a broken RTC.

use core::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Sentinel published by idle workers in the active table.
pub const IDLE: u64 = u64::MAX;

/// TID generator: `(counter << 8) | thread_id`.
#[derive(Debug)]
pub struct TidGen {
    counter: AtomicU64,
}

impl TidGen {
    /// Start generating timestamps strictly above `floor_ts` (pass the
    /// recovered maximum, or 0 for a fresh database).
    pub fn new(floor_ts: u64) -> TidGen {
        TidGen {
            counter: AtomicU64::new(floor_ts + 1),
        }
    }

    /// Next TID for `thread`.
    #[inline]
    pub fn next(&self, thread: usize) -> u64 {
        debug_assert!(thread < 256);
        // HB audit: Relaxed is sufficient — the counter only needs
        // uniqueness and per-thread monotonicity (both properties of the
        // RMW's single modification order), never to publish other
        // memory. Ordering of the *transactions* comes from the CC
        // metadata words, not from TID allocation.
        let ts = self.counter.fetch_add(1, Ordering::Relaxed);
        (ts << 8) | thread as u64
    }

    /// The timestamp portion of a TID.
    #[inline]
    pub fn ts_of(tid: u64) -> u64 {
        tid >> 8
    }

    /// The thread portion of a TID.
    #[inline]
    pub fn thread_of(tid: u64) -> usize {
        (tid & 0xff) as usize
    }

    /// Current timestamp counter (diagnostic / shutdown hint).
    pub fn current_ts(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// The table of currently-running transactions, one padded slot per
/// worker. GC (§5.4) reclaims versions and deleted tuples older than the
/// minimum active TID.
pub struct ActiveTable {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl ActiveTable {
    /// Create a table for `threads` workers, all idle.
    pub fn new(threads: usize) -> ActiveTable {
        let slots: Vec<CachePadded<AtomicU64>> = (0..threads)
            .map(|_| CachePadded::new(AtomicU64::new(IDLE)))
            .collect();
        ActiveTable {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Publish `tid` as thread `t`'s running transaction.
    ///
    /// HB audit: Release pairs with the Acquire in
    /// [`ActiveTable::min_active`]. A GC thread that reads slot `t` and
    /// decides `tid` is active must also observe everything the worker
    /// did before beginning — otherwise it could reclaim a version the
    /// transaction is about to walk.
    #[inline]
    pub fn begin(&self, t: usize, tid: u64) {
        self.slots[t].store(tid, Ordering::Release);
    }

    /// Mark thread `t` idle.
    #[inline]
    pub fn end(&self, t: usize) {
        self.slots[t].store(IDLE, Ordering::Release);
    }

    /// The minimum TID over all running transactions, or `u64::MAX` if
    /// none are running. Anything strictly older is unreachable.
    pub fn min_active(&self) -> u64 {
        let mut min = IDLE;
        for s in self.slots.iter() {
            let v = s.load(Ordering::Acquire);
            if v < min {
                min = v;
            }
        }
        min
    }

    /// Number of worker slots.
    pub fn threads(&self) -> usize {
        self.slots.len()
    }
}

impl core::fmt::Debug for ActiveTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ActiveTable")
            .field("threads", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_monotonic_per_thread_and_tagged() {
        let g = TidGen::new(0);
        let a = g.next(3);
        let b = g.next(3);
        assert!(b > a);
        assert_eq!(TidGen::thread_of(a), 3);
        assert_eq!(TidGen::thread_of(b), 3);
        assert!(TidGen::ts_of(b) > TidGen::ts_of(a));
    }

    #[test]
    fn different_threads_never_collide() {
        let g = std::sync::Arc::new(TidGen::new(0));
        let mut all = Vec::new();
        let sets: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let g = std::sync::Arc::clone(&g);
                    s.spawn(move || (0..1000).map(|_| g.next(t)).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for s in sets {
            all.extend(s);
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "TIDs must be globally unique");
    }

    #[test]
    fn floor_respected_after_recovery() {
        let g = TidGen::new(1000);
        let tid = g.next(0);
        assert!(TidGen::ts_of(tid) > 1000);
    }

    #[test]
    fn active_table_min() {
        let t = ActiveTable::new(3);
        assert_eq!(t.min_active(), IDLE);
        t.begin(0, 500);
        t.begin(1, 300);
        assert_eq!(t.min_active(), 300);
        t.end(1);
        assert_eq!(t.min_active(), 500);
        t.end(0);
        assert_eq!(t.min_active(), IDLE);
    }
}
