//! Tables: a tuple heap plus its index(es) and key extractors.

use pmem_sim::MemCtx;

use falcon_index::{DashTable, DramBTree, DramHash, Index, NbTree};
use falcon_storage::catalog::TableId;
use falcon_storage::{Catalog, NvmAllocator, Schema};

use crate::config::IndexLocation;
use crate::error::EngineError;

/// Extracts the packed 64-bit index key from a row image.
pub type KeyFn = fn(&Schema, &[u8]) -> u64;

/// Which index structure a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Dash-style hash (point lookups only).
    Hash,
    /// NBTree-style B+tree (point lookups + ordered scans).
    BTree,
}

/// A table definition supplied by the application at engine setup (and
/// again at recovery — key extractors are code, not data, exactly as in
/// real systems).
#[derive(Clone)]
pub struct TableDef {
    /// The fixed-width schema.
    pub schema: Schema,
    /// Primary index structure.
    pub index_kind: IndexKind,
    /// Expected row count (sizes the hash directory).
    pub capacity_hint: u64,
    /// Primary-key extractor.
    pub primary_key: KeyFn,
    /// Optional secondary index (kind + key extractor). Maintained on
    /// insert/delete; secondary keys must be immutable under updates.
    pub secondary: Option<(IndexKind, KeyFn)>,
}

impl core::fmt::Debug for TableDef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TableDef")
            .field("schema", &self.schema.name)
            .field("index_kind", &self.index_kind)
            .finish()
    }
}

/// A live table.
pub struct Table {
    /// Catalog table id.
    pub id: TableId,
    /// The schema (also in the catalog).
    pub schema: Schema,
    /// The NVM tuple heap.
    pub heap: falcon_storage::TupleHeap,
    /// Primary index: key → tuple address.
    pub primary: Box<dyn Index>,
    /// Optional secondary index.
    pub secondary: Option<Box<dyn Index>>,
    /// Primary-key extractor.
    pub primary_key: KeyFn,
    /// Secondary-key extractor.
    pub secondary_key: Option<KeyFn>,
}

#[allow(clippy::too_many_arguments)] // Mirrors the (kind × location × lifecycle) matrix.
fn build_index(
    kind: IndexKind,
    location: IndexLocation,
    alloc: &NvmAllocator,
    slot: usize,
    capacity_hint: u64,
    epoch: u64,
    fresh: bool,
    ctx: &mut MemCtx,
) -> Result<Box<dyn Index>, EngineError> {
    let cost = alloc.device().config().cost.clone();
    Ok(match (location, kind) {
        (IndexLocation::Nvm, IndexKind::Hash) => {
            if fresh {
                Box::new(DashTable::create(
                    alloc,
                    falcon_storage::layout::index_slot(slot),
                    capacity_hint,
                    epoch,
                    ctx,
                )?)
            } else {
                Box::new(DashTable::open(
                    alloc,
                    falcon_storage::layout::index_slot(slot),
                    epoch,
                    ctx,
                )?)
            }
        }
        (IndexLocation::Nvm, IndexKind::BTree) => {
            if fresh {
                Box::new(NbTree::create(
                    alloc,
                    falcon_storage::layout::index_slot(slot),
                    ctx,
                )?)
            } else {
                Box::new(NbTree::open(
                    alloc,
                    falcon_storage::layout::index_slot(slot),
                    ctx,
                )?)
            }
        }
        (IndexLocation::Dram, IndexKind::Hash) => Box::new(DramHash::new(cost)),
        (IndexLocation::Dram, IndexKind::BTree) => Box::new(DramBTree::new(cost)),
    })
}

impl Table {
    /// Create a fresh table: registers the schema in the catalog, opens
    /// its heap, and builds its indexes (slot `2*id` primary, `2*id + 1`
    /// secondary).
    pub fn create(
        alloc: &NvmAllocator,
        catalog: &Catalog,
        def: &TableDef,
        location: IndexLocation,
        epoch: u64,
        ctx: &mut MemCtx,
    ) -> Result<Table, EngineError> {
        let id = catalog.create_table(&def.schema, ctx)?;
        Self::build(alloc, catalog, def, location, epoch, id, true, ctx)
    }

    /// Re-open table `id` after a crash. NVM indexes attach instantly;
    /// DRAM indexes come back empty (recovery rebuilds them).
    pub fn open(
        alloc: &NvmAllocator,
        catalog: &Catalog,
        def: &TableDef,
        location: IndexLocation,
        epoch: u64,
        id: TableId,
        ctx: &mut MemCtx,
    ) -> Result<Table, EngineError> {
        Self::build(alloc, catalog, def, location, epoch, id, false, ctx)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        alloc: &NvmAllocator,
        catalog: &Catalog,
        def: &TableDef,
        location: IndexLocation,
        epoch: u64,
        id: TableId,
        fresh: bool,
        ctx: &mut MemCtx,
    ) -> Result<Table, EngineError> {
        let heap =
            falcon_storage::TupleHeap::open(alloc.clone(), catalog.clone(), id, &def.schema, ctx)?;
        let primary = build_index(
            def.index_kind,
            location,
            alloc,
            id as usize * 2,
            def.capacity_hint,
            epoch,
            fresh,
            ctx,
        )?;
        let (secondary, secondary_key) = match def.secondary {
            Some((kind, kf)) => {
                let idx = build_index(
                    kind,
                    location,
                    alloc,
                    id as usize * 2 + 1,
                    def.capacity_hint,
                    epoch,
                    fresh,
                    ctx,
                )?;
                (Some(idx), Some(kf))
            }
            None => (None, None),
        };
        Ok(Table {
            id,
            schema: def.schema.clone(),
            heap,
            primary,
            secondary,
            primary_key: def.primary_key,
            secondary_key,
        })
    }

    /// Tuple data size in bytes.
    pub fn tuple_size(&self) -> u32 {
        self.schema.tuple_size()
    }
}

impl core::fmt::Debug for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.schema.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_storage::layout::format;
    use falcon_storage::ColType;
    use pmem_sim::{PmemDevice, SimConfig};

    fn key_first_u64(schema: &Schema, row: &[u8]) -> u64 {
        let (off, _) = schema.col_range(0);
        u64::from_le_bytes(row[off as usize..off as usize + 8].try_into().unwrap())
    }

    fn def(kind: IndexKind) -> TableDef {
        TableDef {
            schema: Schema::new("t", &[("k", ColType::U64), ("v", ColType::Bytes(32))]),
            index_kind: kind,
            capacity_hint: 1000,
            primary_key: key_first_u64,
            secondary: None,
        }
    }

    fn setup() -> (NvmAllocator, Catalog, MemCtx) {
        let dev = PmemDevice::new(SimConfig::small().with_capacity(128 << 20)).unwrap();
        format(&dev).unwrap();
        let mut ctx = MemCtx::new(0);
        let cat = Catalog::open(dev.clone(), &mut ctx).unwrap();
        (NvmAllocator::new(dev), cat, ctx)
    }

    #[test]
    fn create_both_kinds_and_locations() {
        let (alloc, cat, mut ctx) = setup();
        let t1 = Table::create(
            &alloc,
            &cat,
            &def(IndexKind::Hash),
            IndexLocation::Nvm,
            0,
            &mut ctx,
        )
        .unwrap();
        let t2 = Table::create(
            &alloc,
            &cat,
            &def(IndexKind::BTree),
            IndexLocation::Dram,
            0,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(t1.id, 0);
        assert_eq!(t2.id, 1);
        assert!(t1.primary.persistent());
        assert!(!t2.primary.persistent());
        assert!(t2.primary.supports_scan());
        t1.primary.insert(1, 100, &mut ctx).unwrap();
        assert_eq!(t1.primary.get(1, &mut ctx), Some(100));
    }

    #[test]
    fn nvm_index_survives_reopen() {
        let (alloc, cat, mut ctx) = setup();
        let d = def(IndexKind::Hash);
        let t = Table::create(&alloc, &cat, &d, IndexLocation::Nvm, 0, &mut ctx).unwrap();
        t.primary.insert(7, 700, &mut ctx).unwrap();
        alloc.device().crash();
        let t2 = Table::open(&alloc, &cat, &d, IndexLocation::Nvm, 1, 0, &mut ctx).unwrap();
        assert_eq!(t2.primary.get(7, &mut ctx), Some(700));
    }

    #[test]
    fn key_extractor_works() {
        let (alloc, cat, mut ctx) = setup();
        let d = def(IndexKind::Hash);
        let t = Table::create(&alloc, &cat, &d, IndexLocation::Nvm, 0, &mut ctx).unwrap();
        let mut row = vec![0u8; t.tuple_size() as usize];
        row[0..8].copy_from_slice(&42u64.to_le_bytes());
        assert_eq!((t.primary_key)(&t.schema, &row), 42);
    }

    #[test]
    fn secondary_index_built() {
        let (alloc, cat, mut ctx) = setup();
        let mut d = def(IndexKind::Hash);
        d.secondary = Some((IndexKind::BTree, key_first_u64));
        let t = Table::create(&alloc, &cat, &d, IndexLocation::Nvm, 0, &mut ctx).unwrap();
        let sec = t.secondary.as_ref().unwrap();
        sec.insert(5, 50, &mut ctx).unwrap();
        assert_eq!(sec.get(5, &mut ctx), Some(50));
        assert!(t.secondary_key.is_some());
    }
}
