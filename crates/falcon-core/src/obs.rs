//! Engine observability facade.
//!
//! With the `obs` feature on, this module re-exports the real
//! [`falcon_obs`] counters and the hot path records into them. With the
//! feature off, the same names resolve to the zero-sized no-op stubs
//! below, so instrumentation call sites compile unconditionally — no
//! `cfg` litter in `txn.rs` — and the optimizer erases them entirely.

#[cfg(feature = "obs")]
pub use falcon_obs::{AbortCause, EngineStats, Phase, PHASES};

#[cfg(not(feature = "obs"))]
pub use stub::{EngineStats, Phase};

#[cfg(not(feature = "obs"))]
mod stub {
    //! No-op stand-ins matching the `falcon_obs` API surface the engine
    //! hot path uses.

    /// Traced transaction stage (inert without the `obs` feature).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Phase {
        /// Primary-index lookups and scans.
        IndexLookup,
        /// Concurrency-control acquire.
        CcAcquire,
        /// OCC validation.
        CcValidate,
        /// Log-window appends.
        LogAppend,
        /// Commit-point ordering.
        CommitFence,
        /// Hinted data flushes.
        DataFlush,
        /// Fuzzy-checkpoint work.
        Checkpoint,
    }

    /// Zero-sized no-op engine counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct EngineStats;

    impl EngineStats {
        /// Fresh stub (zero-sized; nothing to initialize).
        #[inline(always)]
        pub fn new() -> Self {
            EngineStats
        }

        /// No-op.
        #[inline(always)]
        pub fn commit_inc(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn abort_inc(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn phase_add(&mut self, _phase: Phase, _ns: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn flush_hinted_inc(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn flush_skipped_hot_inc(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn chain_walk_inc(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn chain_step_inc(&mut self) {}
    }
}
