//! Transactions: concurrency control, logging, and the commit protocols.
//!
//! The in-place commit path is Algorithm 1 of the paper: stamp the
//! write-set `COMMITTED` in the log window, apply the updates in place
//! releasing locks as they go, `sfence`, then run the *selective flush*
//! (hinted flush + hot-tuple tracking). The out-of-place path is the
//! log-free Zen design: write complete new tuple versions, bump the
//! per-thread commit watermark, repoint the index.
//!
//! Concurrency control follows §5.2.1:
//! * **2PL** — reader counts + writer bit in the metadata word, CAS
//!   acquisition, no-wait deadlock avoidance.
//! * **TO** — `write_ts` (+lock bit) in word 0, `read_ts` in word 1;
//!   no-wait on order violations.
//! * **OCC** — three phases; word 0 is the version; validation locks the
//!   write set in address order and re-checks the read set.
//! * **MV2PL / MVTO / MVOCC** — the same, plus DRAM version chains so
//!   read-only transactions read a snapshot without blocking.

#[cfg(feature = "persist-check")]
use pmem_sim::trace::Event;
use pmem_sim::PAddr;

use falcon_storage::tuple::TupleRef;

use crate::config::{CcAlgo, FlushPolicy, LogPolicy, UpdateStrategy};
use crate::engine::{Engine, Worker, FLAG_OBSOLETE, FLAG_TOMBSTONE};
use crate::error::TxnError;
use crate::logwindow::{AppendMark, RedoKind, RedoRecord};
use crate::meta::{self, MetaStore};
use crate::obs::Phase;

/// A read-set entry.
#[derive(Debug, Clone, Copy)]
pub struct ReadEntry {
    pub(crate) tuple: TupleRef,
    /// Metadata word observed at read time (OCC validation).
    pub(crate) observed: u64,
    /// Whether a 2PL read lock is held.
    pub(crate) read_locked: bool,
}

/// A write-set entry: all pending changes to one tuple.
#[derive(Debug, Clone)]
pub struct TupleWrite {
    pub(crate) kind: RedoKind,
    pub(crate) table: u32,
    pub(crate) tuple: TupleRef,
    pub(crate) key: u64,
    pub(crate) sec_key: Option<u64>,
    /// Field updates `(offset, bytes)`; for inserts, one op with the
    /// whole row.
    pub(crate) ops: Vec<(u32, Vec<u8>)>,
    /// Whether the tuple's write lock is held.
    pub(crate) locked: bool,
    /// The write-timestamp word observed when the write intent was
    /// established (source of a version's `begin_ts`).
    pub(crate) observed: u64,
    /// Old row image (captured for MV version creation and out-of-place
    /// rewrites).
    pub(crate) old_data: Option<Vec<u8>>,
}

/// Pack `(addr, row)` into a tuple-cache value.
fn cache_pack(addr: u64, row: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + row.len());
    v.extend_from_slice(&addr.to_le_bytes());
    v.extend_from_slice(row);
    v
}

fn cache_unpack(buf: &[u8]) -> (u64, &[u8]) {
    let addr = u64::from_le_bytes(buf[0..8].try_into().expect("cache entry"));
    (addr, &buf[8..])
}

/// A running transaction.
pub struct Txn<'e, 'w> {
    e: &'e Engine,
    w: &'w mut Worker,
    tid: u64,
    read_only: bool,
    finished: bool,
}

impl<'e, 'w> Txn<'e, 'w> {
    pub(crate) fn begin(e: &'e Engine, w: &'w mut Worker, read_only: bool) -> Txn<'e, 'w> {
        let tid = e.tid_gen.next(w.thread);
        e.active.begin(w.thread, tid);
        w.ctx.advance(e.cfg.cpu_txn_ns);
        w.rs.clear();
        w.ws.clear();
        #[cfg(feature = "persist-check")]
        e.dev.trace_emit(Event::TxnBegin {
            thread: w.ctx.thread_id,
            tid,
        });
        if !read_only && e.in_place() {
            let window = w.window.as_mut().expect("in-place engines have windows");
            window.begin_txn(tid, &mut w.ctx);
        }
        Txn {
            e,
            w,
            tid,
            read_only,
            finished: false,
        }
    }

    /// This transaction's TID.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The engine this transaction runs on (workloads use it for
    /// index-only scans).
    pub fn engine(&self) -> &'e Engine {
        self.e
    }

    /// The worker's memory context (for charging index-only scans run
    /// outside the tuple read protocol).
    pub fn ctx(&mut self) -> &mut pmem_sim::MemCtx {
        &mut self.w.ctx
    }

    /// Whether this transaction runs on the MV snapshot path.
    fn snapshot_reader(&self) -> bool {
        self.read_only && self.e.cfg.cc.multi_version()
    }

    /// Which metadata word holds the write timestamp for the current
    /// algorithm (2PL keeps locks in word 0 and `write_ts` in word 1).
    fn wts_word(&self) -> usize {
        match self.e.cfg.cc.base() {
            CcAlgo::TwoPl => 1,
            _ => 0,
        }
    }

    #[inline]
    fn meta(&self) -> &'e MetaStore {
        &self.e.meta
    }

    // ------------------------------------------------------------------
    // Key resolution.
    // ------------------------------------------------------------------

    fn resolve(&mut self, table: u32, key: u64) -> Result<TupleRef, TxnError> {
        // Pending inserts are visible to the transaction itself.
        for tw in &self.w.ws {
            if tw.table == table && tw.key == key && tw.kind == RedoKind::Insert {
                return Ok(tw.tuple);
            }
        }
        let t = self.e.table(table);
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::IndexLookup as usize);
        let found = t.primary.get(key, &mut self.w.ctx);
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::IndexLookup, dt);
        self.w.ctx.attr_phase(ap);
        match found {
            Some(addr) => Ok(TupleRef::new(PAddr(addr))),
            None => Err(TxnError::NotFound),
        }
    }

    fn ws_index(&self, tuple: TupleRef) -> Option<usize> {
        self.w.ws.iter().position(|tw| tw.tuple == tuple)
    }

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------

    /// Read a whole row by key.
    pub fn read(&mut self, table: u32, key: u64) -> Result<Vec<u8>, TxnError> {
        let size = self.e.table(table).tuple_size() as usize;
        self.read_at(table, key, 0, size as u32)
    }

    /// Read `len` bytes at data offset `off` of the row at `key`.
    pub fn read_at(
        &mut self,
        table: u32,
        key: u64,
        off: u32,
        len: u32,
    ) -> Result<Vec<u8>, TxnError> {
        self.w.ctx.advance(self.e.cfg.cpu_op_ns);

        // ZenS: probe the DRAM tuple cache first.
        if let Some(cache) = &self.e.tuple_cache {
            if let Some(buf) = cache.get(table, key, &mut self.w.ctx) {
                let (addr, row) = cache_unpack(&buf);
                let tuple = TupleRef::new(PAddr(addr));
                let mut out = row[off as usize..(off + len) as usize].to_vec();
                // CC protocol still applies (metadata is in the
                // Met-Cache, so this costs DRAM, not NVM).
                if let Some(i) = self.ws_index(tuple) {
                    overlay(&mut out, off, &self.w.ws[i].ops);
                    return Ok(out);
                }
                self.cc_read_meta_only(tuple)?;
                return Ok(out);
            }
        }

        let tuple = self.resolve(table, key)?;
        if let Some(i) = self.ws_index(tuple) {
            // Own write: read current bytes without CC, overlay pending
            // ops (for own inserts the committed bytes are not yet
            // written, so build from the pending row instead).
            let tw = &self.w.ws[i];
            let mut out = if tw.kind == RedoKind::Insert {
                let row = &tw.ops[0].1;
                row[off as usize..(off + len) as usize].to_vec()
            } else {
                let mut buf = vec![0u8; len as usize];
                tuple.read_data(&self.e.dev, u64::from(off), &mut buf, &mut self.w.ctx);
                buf
            };
            overlay(&mut out, off, &self.w.ws[i].ops);
            return Ok(out);
        }

        let row = if self.snapshot_reader() {
            self.snap_read(tuple, off, len)?
        } else {
            self.cc_read(tuple, off, len)?
        };

        // Fill the ZenS cache on miss (with the full row when we have
        // it; partial reads skip the fill). Fill-if-absent: a plain put
        // could overwrite a concurrent writer's newer entry with this
        // (already stale) snapshot.
        if let Some(cache) = &self.e.tuple_cache {
            if off == 0 && len == self.e.table(table).tuple_size() {
                cache.fill(table, key, &cache_pack(tuple.addr.0, &row), &mut self.w.ctx);
            }
        }
        Ok(row)
    }

    /// Ordered scan over `[lo, hi]` of a BTree-indexed table; `cb`
    /// returns `false` to stop early.
    pub fn scan(
        &mut self,
        table: u32,
        lo: u64,
        hi: u64,
        mut cb: impl FnMut(u64, &[u8]) -> bool,
    ) -> Result<(), TxnError> {
        self.w.ctx.advance(self.e.cfg.cpu_op_ns);
        let t = self.e.table(table);
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::IndexLookup as usize);
        let scanned = t.primary.scan(lo, hi, &mut self.w.ctx, &mut |k, v| {
            pairs.push((k, v));
            true
        });
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::IndexLookup, dt);
        self.w.ctx.attr_phase(ap);
        scanned?;
        let size = t.tuple_size();
        for (k, addr) in pairs {
            self.w.ctx.advance(self.e.cfg.cpu_op_ns);
            let tuple = TupleRef::new(PAddr(addr));
            let row = if let Some(i) = self.ws_index(tuple) {
                let tw = &self.w.ws[i];
                let mut out = if tw.kind == RedoKind::Insert {
                    tw.ops[0].1.clone()
                } else {
                    let mut buf = vec![0u8; size as usize];
                    tuple.read_data(&self.e.dev, 0, &mut buf, &mut self.w.ctx);
                    buf
                };
                overlay(&mut out, 0, &self.w.ws[i].ops);
                out
            } else {
                let r = if self.snapshot_reader() {
                    self.snap_read(tuple, 0, size)
                } else {
                    self.cc_read(tuple, 0, size)
                };
                match r {
                    Ok(row) => row,
                    // Deleted between index read and tuple read: skip.
                    Err(TxnError::NotFound) => continue,
                    Err(e) => return Err(e),
                }
            };
            if !cb(k, &row) {
                break;
            }
        }
        Ok(())
    }

    /// CC read protocol returning `len` bytes at `off`.
    fn cc_read(&mut self, tuple: TupleRef, off: u32, len: u32) -> Result<Vec<u8>, TxnError> {
        self.cc_read_meta_only(tuple)?;
        let mut buf = vec![0u8; len as usize];
        tuple.read_data(&self.e.dev, u64::from(off), &mut buf, &mut self.w.ctx);
        // Re-check: the data must not have changed underneath us (TO /
        // OCC); for 2PL the read lock already protects it.
        if self.e.cfg.cc.base() != CcAlgo::TwoPl {
            let entry = self.w.rs.last().expect("pushed by cc_read_meta_only");
            let cur = self.meta().load(&self.e.dev, tuple, 0, &mut self.w.ctx);
            if cur != entry.observed {
                return Err(TxnError::Conflict);
            }
        }
        Ok(buf)
    }

    /// Run the CC read protocol on metadata only (data already obtained,
    /// e.g. from the tuple cache).
    fn cc_read_meta_only(&mut self, tuple: TupleRef) -> Result<(), TxnError> {
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::CcAcquire as usize);
        let r = self.cc_read_meta_only_inner(tuple);
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::CcAcquire, dt);
        self.w.ctx.attr_phase(ap);
        r
    }

    fn cc_read_meta_only_inner(&mut self, tuple: TupleRef) -> Result<(), TxnError> {
        let epoch = self.e.epoch;
        let dev = &self.e.dev;
        match self.e.cfg.cc.base() {
            CcAlgo::TwoPl => {
                // Re-reads keep the single lock already held (a second
                // acquisition would make the upgrade path see two
                // readers and self-conflict).
                if self.w.rs.iter().any(|r| r.tuple == tuple && r.read_locked) {
                    if tuple.is_deleted(&self.e.dev, &mut self.w.ctx) {
                        return Err(TxnError::NotFound);
                    }
                    return Ok(());
                }
                // Acquire a read lock (no-wait).
                loop {
                    let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                    if meta::is_locked(w0, epoch) {
                        return Err(TxnError::Conflict);
                    }
                    let readers = meta::counter_payload(w0, epoch);
                    let new = meta::pack(epoch, false, readers + 1);
                    if self
                        .meta()
                        .cas(dev, tuple, 0, w0, new, &mut self.w.ctx)
                        .is_ok()
                    {
                        break;
                    }
                }
                self.w.rs.push(ReadEntry {
                    tuple,
                    observed: 0,
                    read_locked: true,
                });
            }
            CcAlgo::To => {
                let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(w0, epoch) || meta::ts_payload(w0) > self.tid {
                    return Err(TxnError::Conflict);
                }
                // Raise read_ts to our TID.
                loop {
                    let r = self.meta().load(dev, tuple, 1, &mut self.w.ctx);
                    if meta::ts_payload(r) >= self.tid {
                        break;
                    }
                    let new = meta::pack(epoch, false, self.tid);
                    if self
                        .meta()
                        .cas(dev, tuple, 1, r, new, &mut self.w.ctx)
                        .is_ok()
                    {
                        break;
                    }
                }
                self.w.rs.push(ReadEntry {
                    tuple,
                    observed: w0,
                    read_locked: false,
                });
            }
            CcAlgo::Occ => {
                let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(w0, epoch) {
                    return Err(TxnError::Conflict);
                }
                self.w.rs.push(ReadEntry {
                    tuple,
                    observed: w0,
                    read_locked: false,
                });
            }
            _ => unreachable!("base() never returns an MV algorithm"),
        }
        if tuple.is_deleted(dev, &mut self.w.ctx) {
            return Err(TxnError::NotFound);
        }
        Ok(())
    }

    /// MV snapshot read (Figure 6): latest version with
    /// `begin_ts <= tid`, without blocking.
    fn snap_read(&mut self, tuple: TupleRef, off: u32, len: u32) -> Result<Vec<u8>, TxnError> {
        let dev = &self.e.dev;
        let epoch = self.e.epoch;
        let w = self.wts_word();
        match self.e.cfg.update {
            UpdateStrategy::InPlace => loop {
                // The version this snapshot needs may still be *the
                // tuple itself* while a writer is mid-commit: the chain
                // only gains it after the writer links its old-version
                // copy. So under a held lock we must retry, not walk the
                // chain — and the post-read consistency check must also
                // re-check the lock, or a torn in-place write could slip
                // through with an unchanged timestamp.
                let wts0 = meta::ts_payload(self.meta().load(dev, tuple, w, &mut self.w.ctx));
                let lock0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(lock0, epoch) {
                    std::hint::spin_loop();
                    continue;
                }
                if wts0 > self.tid {
                    break; // The displaced version is already chained.
                }
                let mut buf = vec![0u8; len as usize];
                tuple.read_data(dev, u64::from(off), &mut buf, &mut self.w.ctx);
                let wts1 = meta::ts_payload(self.meta().load(dev, tuple, w, &mut self.w.ctx));
                let lock1 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if wts1 == wts0 && !meta::is_locked(lock1, epoch) {
                    if tuple.is_deleted(dev, &mut self.w.ctx) {
                        return Err(TxnError::NotFound);
                    }
                    return Ok(buf);
                }
                // Raced with a writer: retry.
            },
            UpdateStrategy::OutOfPlace => {
                // Version slots are immutable once published; a held
                // lock on the old slot does not change its bytes.
                let wts0 = tuple.flags(dev, &mut self.w.ctx) >> 8;
                if wts0 <= self.tid {
                    if tuple.is_deleted(dev, &mut self.w.ctx) {
                        return Err(TxnError::NotFound);
                    }
                    let mut buf = vec![0u8; len as usize];
                    tuple.read_data(dev, u64::from(off), &mut buf, &mut self.w.ctx);
                    return Ok(buf);
                }
                // Too new for this snapshot: walk the chain below.
            }
        }
        match self.e.cfg.update {
            UpdateStrategy::InPlace => {
                // DRAM version chain.
                self.w.obs.chain_walk_inc();
                let mut vref = tuple.version_ptr(dev, &mut self.w.ctx);
                while let Some(v) = self.e.versions.get(vref, &mut self.w.ctx) {
                    self.w.obs.chain_step_inc();
                    if v.begin_ts <= self.tid {
                        let s = off as usize..(off + len) as usize;
                        return Ok(v.data[s].to_vec());
                    }
                    vref = v.prev;
                }
                Err(TxnError::NotFound)
            }
            UpdateStrategy::OutOfPlace => {
                // NVM old-slot chain; version TIDs live in the flags
                // word (bits 8+), uniformly across CC algorithms.
                self.w.obs.chain_walk_inc();
                let mut cur = tuple.version_ptr(dev, &mut self.w.ctx);
                while cur != 0 {
                    self.w.obs.chain_step_inc();
                    let old = TupleRef::new(PAddr(cur));
                    let flags = old.flags(dev, &mut self.w.ctx);
                    let ots = flags >> 8;
                    if ots <= self.tid {
                        if flags & FLAG_TOMBSTONE != 0 {
                            return Err(TxnError::NotFound);
                        }
                        let mut buf = vec![0u8; len as usize];
                        old.read_data(dev, u64::from(off), &mut buf, &mut self.w.ctx);
                        return Ok(buf);
                    }
                    cur = old.version_ptr(dev, &mut self.w.ctx);
                }
                Err(TxnError::NotFound)
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes.
    // ------------------------------------------------------------------

    /// Acquire a write intent on `tuple` per the CC algorithm; returns
    /// the observed write-timestamp word.
    fn cc_write_lock(&mut self, tuple: TupleRef) -> Result<(u64, bool), TxnError> {
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::CcAcquire as usize);
        let r = self.cc_write_lock_inner(tuple);
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::CcAcquire, dt);
        self.w.ctx.attr_phase(ap);
        r
    }

    fn cc_write_lock_inner(&mut self, tuple: TupleRef) -> Result<(u64, bool), TxnError> {
        let epoch = self.e.epoch;
        let dev = &self.e.dev;
        match self.e.cfg.cc.base() {
            CcAlgo::TwoPl => {
                let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(w0, epoch) {
                    return Err(TxnError::Conflict);
                }
                let readers = meta::counter_payload(w0, epoch);
                let own_read = self
                    .w
                    .rs
                    .iter()
                    .position(|r| r.tuple == tuple && r.read_locked);
                let expected_readers = if own_read.is_some() { 1 } else { 0 };
                if readers != expected_readers {
                    return Err(TxnError::Conflict);
                }
                let new = meta::pack(epoch, true, self.tid & meta::PAYLOAD);
                if self
                    .meta()
                    .cas(dev, tuple, 0, w0, new, &mut self.w.ctx)
                    .is_err()
                {
                    return Err(TxnError::Conflict);
                }
                if let Some(i) = own_read {
                    // The read lock was consumed by the upgrade.
                    self.w.rs[i].read_locked = false;
                }
                let wts = self.meta().load(dev, tuple, 1, &mut self.w.ctx);
                Ok((wts, true))
            }
            CcAlgo::To => {
                let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(w0, epoch) || meta::ts_payload(w0) > self.tid {
                    return Err(TxnError::Conflict);
                }
                let rts = self.meta().load(dev, tuple, 1, &mut self.w.ctx);
                if meta::ts_payload(rts) > self.tid {
                    return Err(TxnError::Conflict);
                }
                let new = meta::pack(epoch, true, meta::ts_payload(w0));
                if self
                    .meta()
                    .cas(dev, tuple, 0, w0, new, &mut self.w.ctx)
                    .is_err()
                {
                    return Err(TxnError::Conflict);
                }
                Ok((w0, true))
            }
            CcAlgo::Occ => {
                // Optimistic: no lock until validation.
                let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
                if meta::is_locked(w0, epoch) {
                    return Err(TxnError::Conflict);
                }
                Ok((w0, false))
            }
            _ => unreachable!(),
        }
    }

    /// Capture the old row (MV / out-of-place) and log the old-version
    /// copy for the Inp engines' NVM log.
    fn capture_old(&mut self, table: u32, tuple: TupleRef) -> Option<Vec<u8>> {
        let need = self.e.cfg.cc.multi_version() || self.e.cfg.update == UpdateStrategy::OutOfPlace;
        if !need {
            return None;
        }
        let size = self.e.table(table).tuple_size() as usize;
        let mut old = vec![0u8; size];
        tuple.read_data(&self.e.dev, 0, &mut old, &mut self.w.ctx);
        if self.e.in_place() && self.e.cfg.cc.multi_version() && self.e.cfg.log == LogPolicy::NvmLog
        {
            // Inp keeps old versions in its NVM log (Table 1).
            let rec = RedoRecord {
                kind: RedoKind::VersionCopy,
                table,
                tuple: tuple.addr.0,
                key: 0,
                off: 0,
                data: &old,
            };
            self.window_append(&rec).ok();
        }
        Some(old)
    }

    /// Update fields of the row at `key`: `ops` is a list of
    /// `(data offset, new bytes)`.
    pub fn update(&mut self, table: u32, key: u64, ops: &[(u32, &[u8])]) -> Result<(), TxnError> {
        if self.read_only {
            return Err(TxnError::ReadOnly);
        }
        self.w.ctx.advance(self.e.cfg.cpu_op_ns);
        let tuple = self.resolve(table, key)?;

        if let Some(i) = self.ws_index(tuple) {
            // Second update to the same tuple: extend.
            for &(off, bytes) in ops {
                self.w.ws[i].ops.push((off, bytes.to_vec()));
            }
            if self.e.in_place() {
                self.log_updates(table, tuple, ops)?;
            }
            return Ok(());
        }

        let (observed, locked) = self.cc_write_lock(tuple)?;
        if tuple.is_deleted(&self.e.dev, &mut self.w.ctx) {
            self.undo_lock(tuple, observed, locked);
            return Err(TxnError::NotFound);
        }
        let old_data = self.capture_old(table, tuple);
        if self.e.in_place() {
            self.log_updates(table, tuple, ops)?;
        }
        self.w.ws.push(TupleWrite {
            kind: RedoKind::Update,
            table,
            tuple,
            key,
            sec_key: None,
            ops: ops.iter().map(|&(o, b)| (o, b.to_vec())).collect(),
            locked,
            observed,
            old_data,
        });
        Ok(())
    }

    /// Append one record to this worker's log window, attributing the
    /// cost to the log-append phase span. A spill-cap rejection is
    /// resolved with a bounded backpressure stall — one inline fuzzy
    /// checkpoint drains the spill tail, then the append retries once —
    /// provided this transaction has no spill extent of its own yet
    /// (its records sit behind the tail and cannot be truncated). The
    /// retry can still fail (a record larger than the whole cap); the
    /// typed [`TxnError::LogOverflow`] then propagates — never a panic,
    /// never a silent drop.
    fn window_append(&mut self, rec: &RedoRecord<'_>) -> Result<AppendMark, TxnError> {
        match self.window_append_raw(rec) {
            Err(TxnError::LogOverflow) if self.e.cfg.ckpt_enabled => {
                // Cap backpressure: one inline drain checkpoint, then a
                // single retry. With no live spill extent the tail is
                // truncated outright; with one, the region is compacted
                // around it. The retry can still fail (a transaction
                // bigger than the whole cap); the typed error then
                // propagates — never a panic, never a silent drop.
                self.w.ckpt.backpressure_stalls += 1;
                crate::checkpoint::run(self.e, self.w, false);
                self.window_append_raw(rec)
            }
            r => r,
        }
    }

    /// Append to the window and return the pre-append cursor snapshot,
    /// taken *after* any backpressure compaction so [`LogWindow::retract`]
    /// always sees coordinates of the current region layout.
    fn window_append_raw(&mut self, rec: &RedoRecord<'_>) -> Result<AppendMark, TxnError> {
        let w = &mut *self.w;
        let t0 = w.ctx.clock;
        let ap = w.ctx.attr_phase(Phase::LogAppend as usize);
        let window = w.window.as_mut().expect("in-place");
        let m = window.mark();
        let r = window.append(rec, &mut w.ctx).map(|()| m);
        w.obs.phase_add(Phase::LogAppend, w.ctx.clock - t0);
        w.ctx.attr_phase(ap);
        r
    }

    fn log_updates(
        &mut self,
        table: u32,
        tuple: TupleRef,
        ops: &[(u32, &[u8])],
    ) -> Result<(), TxnError> {
        for &(off, bytes) in ops {
            let rec = RedoRecord {
                kind: RedoKind::Update,
                table,
                tuple: tuple.addr.0,
                key: 0,
                off,
                data: bytes,
            };
            self.window_append(&rec)?;
        }
        Ok(())
    }

    fn undo_lock(&mut self, tuple: TupleRef, observed: u64, locked: bool) {
        if !locked {
            return;
        }
        let epoch = self.e.epoch;
        let restore = match self.e.cfg.cc.base() {
            CcAlgo::TwoPl => meta::pack(epoch, false, 0),
            _ => meta::pack(epoch, false, meta::ts_payload(observed)),
        };
        self.meta()
            .store(&self.e.dev, tuple, 0, restore, &mut self.w.ctx);
    }

    /// Insert a new row. The index entries are created immediately (the
    /// tuple stays write-locked until commit, so concurrent readers
    /// no-wait abort rather than observe uncommitted data).
    pub fn insert(&mut self, table: u32, row: &[u8]) -> Result<(), TxnError> {
        if self.read_only {
            return Err(TxnError::ReadOnly);
        }
        self.w.ctx.advance(self.e.cfg.cpu_op_ns);
        let t = self.e.table(table);
        assert_eq!(row.len(), t.tuple_size() as usize, "row must match schema");
        let key = (t.primary_key)(&t.schema, row);
        let min_active = self.e.active.min_active();
        let slot = t
            .heap
            .alloc_slot(self.w.thread, min_active, &mut self.w.ctx)?;
        let epoch = self.e.epoch;
        // Lock the fresh tuple and clear any recycled state.
        self.meta().store(
            &self.e.dev,
            slot,
            0,
            meta::pack(epoch, true, self.tid & meta::PAYLOAD),
            &mut self.w.ctx,
        );
        self.meta().store(&self.e.dev, slot, 1, 0, &mut self.w.ctx);
        slot.set_version_ptr(&self.e.dev, 0, &mut self.w.ctx);
        if !self.e.in_place() {
            // Stamp the version TID now: until the commit watermark
            // passes it, the recovery scan treats this slot as garbage
            // (a fresh slot's zeroed flags would read as "bulk-loaded").
            self.e
                .dev
                .store_u64(slot.flags_addr(), self.tid << 8, &mut self.w.ctx);
        }
        // WAL order: the Insert record goes to the log *before* the
        // index entry becomes visible. A power cut between an index
        // publish and its log append would otherwise leave a durable
        // entry pointing at a dataless slot with no record telling
        // recovery to undo it (§5.3's uncommitted rollback walks the
        // window, not the index).
        let mut mark = None;
        if self.e.in_place() {
            let rec = RedoRecord {
                kind: RedoKind::Insert,
                table,
                tuple: slot.addr.0,
                key,
                off: 0,
                data: row,
            };
            match self.window_append(&rec) {
                Ok(m) => mark = Some(m),
                Err(e) => {
                    t.heap.free_slot(self.w.thread, slot, 0, &mut self.w.ctx);
                    return Err(e);
                }
            }
        }
        let retract = |w: &mut Worker| {
            if let Some(m) = mark {
                let window = w.window.as_mut().expect("in-place");
                window.retract(m, &mut w.ctx);
            }
        };
        if let Err(e) = t.primary.insert(key, slot.addr.0, &mut self.w.ctx) {
            retract(&mut *self.w);
            t.heap.free_slot(self.w.thread, slot, 0, &mut self.w.ctx);
            return Err(e.into());
        }
        let sec_key = match (&t.secondary, t.secondary_key) {
            (Some(sec), Some(kf)) => {
                let sk = kf(&t.schema, row);
                if let Err(e) = sec.insert(sk, slot.addr.0, &mut self.w.ctx) {
                    // Unwind the primary entry and the slot, or the key
                    // would stay claimed by a tuple nobody commits.
                    t.primary.remove(key, &mut self.w.ctx);
                    retract(&mut *self.w);
                    t.heap.free_slot(self.w.thread, slot, 0, &mut self.w.ctx);
                    return Err(e.into());
                }
                Some(sk)
            }
            _ => None,
        };
        self.w.ws.push(TupleWrite {
            kind: RedoKind::Insert,
            table,
            tuple: slot,
            key,
            sec_key,
            ops: vec![(0, row.to_vec())],
            locked: true,
            observed: 0,
            old_data: None,
        });
        Ok(())
    }

    /// Delete the row at `key` (§5.4: translated into an update that
    /// raises the delete flag; the slot joins the thread's persistent
    /// delete list at apply).
    pub fn delete(&mut self, table: u32, key: u64) -> Result<(), TxnError> {
        if self.read_only {
            return Err(TxnError::ReadOnly);
        }
        self.w.ctx.advance(self.e.cfg.cpu_op_ns);
        let tuple = self.resolve(table, key)?;
        if self.ws_index(tuple).is_some() {
            // Deleting a tuple this transaction already wrote is not
            // needed by any evaluated workload; treat as a conflict.
            return Err(TxnError::Conflict);
        }
        let (observed, locked) = self.cc_write_lock(tuple)?;
        if tuple.is_deleted(&self.e.dev, &mut self.w.ctx) {
            self.undo_lock(tuple, observed, locked);
            return Err(TxnError::NotFound);
        }
        // The old row is always needed: versions and the secondary key.
        let size = self.e.table(table).tuple_size() as usize;
        let mut old = vec![0u8; size];
        tuple.read_data(&self.e.dev, 0, &mut old, &mut self.w.ctx);
        let t = self.e.table(table);
        let sec_key = t.secondary_key.map(|kf| kf(&t.schema, &old));
        if self.e.in_place() {
            let rec = RedoRecord {
                kind: RedoKind::Delete,
                table,
                tuple: tuple.addr.0,
                key,
                off: 0,
                data: &[],
            };
            self.window_append(&rec)?;
        }
        self.w.ws.push(TupleWrite {
            kind: RedoKind::Delete,
            table,
            tuple,
            key,
            sec_key,
            ops: Vec::new(),
            locked,
            observed,
            old_data: Some(old),
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Commit / abort.
    // ------------------------------------------------------------------

    /// Commit the transaction.
    pub fn commit(mut self) -> Result<(), TxnError> {
        self.w.ctx.advance(self.e.cfg.cpu_txn_ns);
        if self.w.ws.is_empty() {
            // Read-only (or empty) transaction: free the window slot
            // claimed at begin, release read locks, done.
            if !self.read_only && self.e.in_place() {
                let window = self.w.window.as_mut().expect("in-place");
                window.abort(&mut self.w.ctx);
            }
            self.release_read_locks();
            self.end(false);
            self.w.obs.commit_inc();
            return Ok(());
        }
        if self.e.cfg.cc.base() == CcAlgo::Occ {
            if let Err(e) = self.occ_validate() {
                self.rollback();
                return Err(e);
            }
        }
        match self.e.cfg.update {
            UpdateStrategy::InPlace => self.commit_in_place(),
            UpdateStrategy::OutOfPlace => self.commit_out_of_place(),
        }
        self.release_read_locks();
        self.end(false);
        self.w.obs.commit_inc();
        Ok(())
    }

    /// Abort the transaction, undoing exec-time effects.
    pub fn abort(mut self) {
        self.rollback();
    }

    fn rollback(&mut self) {
        let epoch = self.e.epoch;
        for i in 0..self.w.ws.len() {
            let tw = self.w.ws[i].clone();
            match tw.kind {
                RedoKind::Insert => {
                    let t = self.e.table(tw.table);
                    t.primary.remove(tw.key, &mut self.w.ctx);
                    if let (Some(sec), Some(sk)) = (&t.secondary, tw.sec_key) {
                        sec.remove(sk, &mut self.w.ctx);
                    }
                    self.meta().store(
                        &self.e.dev,
                        tw.tuple,
                        0,
                        meta::pack(epoch, false, 0),
                        &mut self.w.ctx,
                    );
                    t.heap
                        .free_slot(self.w.thread, tw.tuple, 0, &mut self.w.ctx);
                }
                _ => self.undo_lock(tw.tuple, tw.observed, tw.locked),
            }
        }
        self.release_read_locks();
        if !self.read_only && self.e.in_place() {
            let window = self.w.window.as_mut().expect("in-place");
            window.abort(&mut self.w.ctx);
        }
        self.end(true);
        self.w.obs.abort_inc();
    }

    /// OCC validation: lock the write set in address order, then
    /// re-check the read set.
    fn occ_validate(&mut self) -> Result<(), TxnError> {
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::CcValidate as usize);
        let r = self.occ_validate_inner();
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::CcValidate, dt);
        self.w.ctx.attr_phase(ap);
        r
    }

    fn occ_validate_inner(&mut self) -> Result<(), TxnError> {
        let epoch = self.e.epoch;
        let dev = &self.e.dev;
        let mut order: Vec<usize> = (0..self.w.ws.len()).collect();
        order.sort_by_key(|&i| self.w.ws[i].tuple.addr.0);
        for &i in &order {
            if self.w.ws[i].locked {
                continue; // Inserts are born locked.
            }
            let tuple = self.w.ws[i].tuple;
            let w0 = self.meta().load(dev, tuple, 0, &mut self.w.ctx);
            if meta::is_locked(w0, epoch)
                || meta::ts_payload(w0) != meta::ts_payload(self.w.ws[i].observed)
            {
                return Err(TxnError::Conflict);
            }
            let new = meta::pack(epoch, true, meta::ts_payload(w0));
            if self
                .meta()
                .cas(dev, tuple, 0, w0, new, &mut self.w.ctx)
                .is_err()
            {
                return Err(TxnError::Conflict);
            }
            self.w.ws[i].locked = true;
            self.w.ws[i].observed = w0;
        }
        // Validate reads: versions unchanged and not locked by others.
        for i in 0..self.w.rs.len() {
            let entry = self.w.rs[i];
            let cur = self.meta().load(dev, entry.tuple, 0, &mut self.w.ctx);
            if meta::ts_payload(cur) != meta::ts_payload(entry.observed) {
                return Err(TxnError::Conflict);
            }
            let own = self.ws_index(entry.tuple).is_some();
            if meta::is_locked(cur, epoch) && !own {
                return Err(TxnError::Conflict);
            }
        }
        Ok(())
    }

    /// Algorithm 1: the in-place commit.
    fn commit_in_place(&mut self) {
        let epoch = self.e.epoch;
        let tid = self.tid;
        let mv = self.e.cfg.cc.multi_version();
        // Line 2: write-set.state = COMMITTED.
        {
            let w = &mut *self.w;
            let t0 = w.ctx.clock;
            let ap = w.ctx.attr_phase(Phase::CommitFence as usize);
            let window = w.window.as_mut().expect("in-place");
            window.commit(&mut w.ctx);
            w.obs.phase_add(Phase::CommitFence, w.ctx.clock - t0);
            w.ctx.attr_phase(ap);
        }
        // The commit record is durable (or in the persistence domain):
        // this is the transaction's commit point.
        #[cfg(feature = "persist-check")]
        self.e.dev.trace_emit(Event::TxnCommit {
            thread: self.w.ctx.thread_id,
            tid,
        });
        // Lines 3–6: apply in place, releasing locks as we go.
        for i in 0..self.w.ws.len() {
            let tw = self.w.ws[i].clone();
            let dev = &self.e.dev;
            if mv && tw.kind != RedoKind::Insert {
                // Chain the old version (DRAM heap).
                let begin_ts = meta::ts_payload(tw.observed);
                let prev = tw.tuple.version_ptr(dev, &mut self.w.ctx);
                let old = tw.old_data.as_deref().unwrap_or(&[]);
                let vref =
                    self.e
                        .versions
                        .push(self.w.thread, begin_ts, tid, prev, old, &mut self.w.ctx);
                tw.tuple.set_version_ptr(dev, vref, &mut self.w.ctx);
            }
            match tw.kind {
                RedoKind::Update | RedoKind::Insert => {
                    for (off, bytes) in &tw.ops {
                        tw.tuple
                            .write_data(dev, u64::from(*off), bytes, &mut self.w.ctx);
                    }
                }
                RedoKind::Delete => {
                    let t = self.e.table(tw.table);
                    // free_slot atomically raises the delete flag before
                    // anything else, so readers racing the index removal
                    // observe a deleted tuple, never a recycled one.
                    t.heap
                        .free_slot(self.w.thread, tw.tuple, tid, &mut self.w.ctx);
                    t.primary.remove(tw.key, &mut self.w.ctx);
                    if let (Some(sec), Some(sk)) = (&t.secondary, tw.sec_key) {
                        sec.remove(sk, &mut self.w.ctx);
                    }
                }
                RedoKind::VersionCopy => {}
            }
            // Release the lock / publish the new write timestamp
            // (line 5).
            let unlock = match self.e.cfg.cc.base() {
                CcAlgo::TwoPl => {
                    // write_ts lives in word 1 under 2PL.
                    self.meta().store(
                        dev,
                        tw.tuple,
                        1,
                        meta::pack(epoch, false, tid & meta::PAYLOAD),
                        &mut self.w.ctx,
                    );
                    meta::pack(epoch, false, 0)
                }
                _ => meta::pack(epoch, false, tid & meta::PAYLOAD),
            };
            self.meta().store(dev, tw.tuple, 0, unlock, &mut self.w.ctx);
        }
        // Line 7.
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::CommitFence as usize);
        self.e.dev.sfence(&mut self.w.ctx);
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::CommitFence, dt);
        self.w.ctx.attr_phase(ap);
        // Lines 8–11: selective data flush.
        self.flush_stage();
        let window = self.w.window.as_mut().expect("in-place");
        window.finish(&mut self.w.ctx);
        // Checkpoint boundary: with the slot freed, every byte in the
        // spill tail belongs to finished transactions, so once the tail
        // passes the threshold a fuzzy checkpoint captures and truncates
        // it here rather than waiting for the cap to force a stall.
        if self.e.cfg.ckpt_enabled {
            let tail = self.w.window.as_ref().expect("in-place").spill_tail();
            if tail >= self.e.cfg.ckpt_spill_threshold {
                crate::checkpoint::run(self.e, self.w, true);
            }
        }
    }

    /// The log-free out-of-place commit (Zen).
    fn commit_out_of_place(&mut self) {
        let _epoch = self.e.epoch;
        let tid = self.tid;
        for i in 0..self.w.ws.len() {
            let tw = self.w.ws[i].clone();
            let dev = self.e.dev.clone();
            let t = self.e.table(tw.table);
            match tw.kind {
                RedoKind::Update => {
                    // A thread may not modify another thread's tuple in
                    // place: copy the whole tuple into an own-thread slot
                    // and invalidate the original (Zen, §6.2.3).
                    let min_active = self.e.active.min_active();
                    let new_slot =
                        match t
                            .heap
                            .alloc_slot(self.w.thread, min_active, &mut self.w.ctx)
                        {
                            Ok(s) => s,
                            Err(_) => {
                                // Out of space: drop the write, but
                                // release the lock or the tuple is
                                // unwritable forever.
                                self.undo_lock(tw.tuple, tw.observed, tw.locked);
                                continue;
                            }
                        };
                    let mut row = tw.old_data.clone().expect("captured at exec");
                    for (off, bytes) in &tw.ops {
                        row[*off as usize..*off as usize + bytes.len()].copy_from_slice(bytes);
                    }
                    new_slot.set_version_ptr(&dev, tw.tuple.addr.0, &mut self.w.ctx);
                    // The flags word carries the version's commit TID
                    // (bits 8+): recovery reads it uniformly, whatever
                    // CC algorithm (and metadata location) is live.
                    dev.store_u64(new_slot.flags_addr(), tid << 8, &mut self.w.ctx);
                    new_slot.write_data(&dev, 0, &row, &mut self.w.ctx);
                    self.publish_version_meta(new_slot, tid);
                    // Invalidate the original (a hint for GC, never
                    // trusted by recovery: the commit watermark decides).
                    dev.fetch_or_u64(tw.tuple.flags_addr(), FLAG_OBSOLETE, &mut self.w.ctx);
                    self.undo_lock(tw.tuple, tw.observed, tw.locked);
                    t.primary.update(tw.key, new_slot.addr.0, &mut self.w.ctx);
                    if let (Some(sec), Some(kf)) = (&t.secondary, t.secondary_key) {
                        let sk = kf(&t.schema, tw.old_data.as_ref().expect("captured"));
                        sec.update(sk, new_slot.addr.0, &mut self.w.ctx);
                    }
                    if let Some(cache) = &self.e.tuple_cache {
                        cache.put(
                            tw.table,
                            tw.key,
                            &cache_pack(new_slot.addr.0, &row),
                            &mut self.w.ctx,
                        );
                    }
                    self.flush_tuple(new_slot, 0, row.len() as u64);
                    self.w.outp_garbage.push((tw.table, tw.tuple.addr.0, tid));
                }
                RedoKind::Insert => {
                    let row = &tw.ops[0].1;
                    tw.tuple.write_data(&dev, 0, row, &mut self.w.ctx);
                    self.publish_version_meta(tw.tuple, tid);
                    if let Some(cache) = &self.e.tuple_cache {
                        cache.put(
                            tw.table,
                            tw.key,
                            &cache_pack(tw.tuple.addr.0, row),
                            &mut self.w.ctx,
                        );
                    }
                    self.flush_tuple(tw.tuple, 0, row.len() as u64);
                }
                RedoKind::Delete => {
                    // Log-free delete: a committed *tombstone* version
                    // makes the deletion recoverable (Zen-style; the old
                    // row alone cannot record "I was deleted").
                    let min_active = self.e.active.min_active();
                    if let Ok(tomb) = t
                        .heap
                        .alloc_slot(self.w.thread, min_active, &mut self.w.ctx)
                    {
                        tomb.set_version_ptr(&dev, tw.tuple.addr.0, &mut self.w.ctx);
                        // The tombstone's data area records the key so
                        // the recovery scan can attribute it.
                        tomb.write_data(&dev, 0, &tw.key.to_le_bytes(), &mut self.w.ctx);
                        dev.store_u64(
                            tomb.flags_addr(),
                            (tid << 8) | FLAG_TOMBSTONE,
                            &mut self.w.ctx,
                        );
                        self.flush_header(tomb);
                        self.w.outp_garbage.push((tw.table, tomb.addr.0, tid));
                    }
                    dev.fetch_or_u64(tw.tuple.flags_addr(), FLAG_OBSOLETE, &mut self.w.ctx);
                    self.undo_lock(tw.tuple, tw.observed, tw.locked);
                    t.primary.remove(tw.key, &mut self.w.ctx);
                    if let (Some(sec), Some(sk)) = (&t.secondary, tw.sec_key) {
                        sec.remove(sk, &mut self.w.ctx);
                    }
                    if let Some(cache) = &self.e.tuple_cache {
                        cache.invalidate(tw.table, tw.key, &mut self.w.ctx);
                    }
                    self.w.outp_garbage.push((tw.table, tw.tuple.addr.0, tid));
                }
                RedoKind::VersionCopy => {}
            }
        }
        // Publish the commit: versions first, then the watermark.
        let fence_t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::CommitFence as usize);
        self.e.dev.sfence(&mut self.w.ctx);
        let wm = self.e.watermark_addr(self.w.thread);
        #[cfg(feature = "persist-check")]
        self.e.dev.trace_emit(Event::CommitRecord {
            thread: self.w.ctx.thread_id,
            addr: wm.0,
        });
        self.e.dev.store_u64(wm, tid, &mut self.w.ctx);
        if self.e.cfg.flush != FlushPolicy::None {
            #[cfg(feature = "persist-check")]
            self.e.dev.trace_emit(Event::DurableHint {
                thread: self.w.ctx.thread_id,
                addr: wm.0,
                len: 8,
            });
            self.e.dev.clwb(wm, &mut self.w.ctx);
            self.e.dev.sfence(&mut self.w.ctx);
        }
        let fence_dt = self.w.ctx.clock - fence_t0;
        self.w.obs.phase_add(Phase::CommitFence, fence_dt);
        self.w.ctx.attr_phase(ap);
        #[cfg(feature = "persist-check")]
        self.e.dev.trace_emit(Event::TxnCommit {
            thread: self.w.ctx.thread_id,
            tid,
        });
    }

    /// Publish the live CC metadata of a freshly-written out-of-place
    /// version: under 2PL the lock word holds a reader count (so the
    /// write timestamp goes to word 1); under TO/OCC word 0 is the
    /// timestamp itself.
    fn publish_version_meta(&mut self, slot: TupleRef, tid: u64) {
        let epoch = self.e.epoch;
        let dev = self.e.dev.clone();
        match self.e.cfg.cc.base() {
            CcAlgo::TwoPl => {
                self.meta().store(
                    &dev,
                    slot,
                    1,
                    meta::pack(epoch, false, tid & meta::PAYLOAD),
                    &mut self.w.ctx,
                );
                self.meta()
                    .store(&dev, slot, 0, meta::pack(epoch, false, 0), &mut self.w.ctx);
            }
            _ => {
                self.meta().store(
                    &dev,
                    slot,
                    0,
                    meta::pack(epoch, false, tid & meta::PAYLOAD),
                    &mut self.w.ctx,
                );
                self.meta().store(&dev, slot, 1, 0, &mut self.w.ctx);
            }
        }
    }

    /// Lines 8–11 of Algorithm 1: hinted flush + hot-tuple tracking.
    fn flush_stage(&mut self) {
        for i in 0..self.w.ws.len() {
            let tw = self.w.ws[i].clone();
            match tw.kind {
                RedoKind::Update => {
                    // Hinted flush: flush the contiguous byte ranges the
                    // update touched (whole cache lines, issued together
                    // so the XPBuffer can merge them).
                    let (mut lo, mut hi) = (u64::MAX, 0u64);
                    for (off, bytes) in &tw.ops {
                        lo = lo.min(u64::from(*off));
                        hi = hi.max(u64::from(*off) + bytes.len() as u64);
                    }
                    if lo < hi {
                        self.flush_tuple(tw.tuple, lo, hi - lo);
                    }
                }
                RedoKind::Insert => {
                    let len = tw.ops[0].1.len() as u64;
                    self.flush_tuple(tw.tuple, 0, len);
                }
                RedoKind::Delete => {
                    // The header line carries the delete flag.
                    self.flush_header(tw.tuple);
                }
                RedoKind::VersionCopy => {}
            }
        }
    }

    fn flush_tuple(&mut self, tuple: TupleRef, off: u64, len: u64) {
        let t0 = self.w.ctx.clock;
        let ap = self.w.ctx.attr_phase(Phase::DataFlush as usize);
        match self.e.cfg.flush {
            FlushPolicy::None => {}
            FlushPolicy::All => {
                self.hint_flush(tuple.data_addr(off).0, len);
                tuple.flush_data(&self.e.dev, off, len, &mut self.w.ctx);
                self.w.obs.flush_hinted_inc();
            }
            FlushPolicy::Selective => {
                // Hot tuples are never manually flushed (Algorithm 1,
                // lines 9–11). Hot-tuple tracking does not apply to
                // out-of-place updates (addresses change every time).
                let applies = self.e.in_place();
                if !applies || !self.w.hot.check_and_cache(tuple.addr.0) {
                    self.hint_flush(tuple.data_addr(off).0, len);
                    tuple.flush_data(&self.e.dev, off, len, &mut self.w.ctx);
                    self.w.obs.flush_hinted_inc();
                } else {
                    self.w.obs.flush_skipped_hot_inc();
                    self.track_dirty(tuple, off, len);
                }
            }
        }
        let dt = self.w.ctx.clock - t0;
        self.w.obs.phase_add(Phase::DataFlush, dt);
        self.w.ctx.attr_phase(ap);
    }

    /// Remember the cache lines a skipped hot-tuple flush left dirty so
    /// the next fuzzy checkpoint can write them back before truncating
    /// the redo that covers them. Bounded: when the set reaches its cap
    /// the line is written back immediately instead of deferred (same
    /// durability, no unbounded DRAM growth). Under eADR the write-back
    /// is a no-op, so tracking costs nothing but the set insert.
    fn track_dirty(&mut self, tuple: TupleRef, off: u64, len: u64) {
        if !self.e.cfg.ckpt_enabled || len == 0 {
            return;
        }
        let start = tuple.data_addr(off).0;
        let mut line = start & !63;
        let last = (start + len - 1) & !63;
        while line <= last {
            if self.w.ckpt_dirty.len() >= self.e.cfg.ckpt_dirty_cap
                && !self.w.ckpt_dirty.contains(&line)
            {
                self.e.dev.clwb_if_adr(PAddr(line), &mut self.w.ctx);
            } else {
                self.w.ckpt_dirty.insert(line);
            }
            line += 64;
        }
        self.w.ckpt.dirty_peak = self.w.ckpt.dirty_peak.max(self.w.ckpt_dirty.len() as u64);
    }

    fn flush_header(&mut self, tuple: TupleRef) {
        if self.e.cfg.flush != FlushPolicy::None {
            let t0 = self.w.ctx.clock;
            let ap = self.w.ctx.attr_phase(Phase::DataFlush as usize);
            self.hint_flush(tuple.addr.0, 8);
            self.e.dev.clwb(tuple.addr, &mut self.w.ctx);
            self.w.obs.flush_hinted_inc();
            let dt = self.w.ctx.clock - t0;
            self.w.obs.phase_add(Phase::DataFlush, dt);
            self.w.ctx.attr_phase(ap);
        }
    }

    /// Announce a durable-intent range to the persistency checker just
    /// before flushing it (R2 coverage).
    #[cfg(feature = "persist-check")]
    fn hint_flush(&mut self, addr: u64, len: u64) {
        self.e.dev.trace_emit(Event::DurableHint {
            thread: self.w.ctx.thread_id,
            addr,
            len,
        });
    }

    #[cfg(not(feature = "persist-check"))]
    fn hint_flush(&mut self, _addr: u64, _len: u64) {}

    fn release_read_locks(&mut self) {
        if self.e.cfg.cc.base() != CcAlgo::TwoPl {
            return;
        }
        let epoch = self.e.epoch;
        for i in 0..self.w.rs.len() {
            let entry = self.w.rs[i];
            if !entry.read_locked {
                continue;
            }
            loop {
                let w0 = self
                    .meta()
                    .load(&self.e.dev, entry.tuple, 0, &mut self.w.ctx);
                let readers = meta::counter_payload(w0, epoch);
                if meta::is_locked(w0, epoch) || readers == 0 {
                    break; // Consumed by an upgrade or crash-stale.
                }
                let new = meta::pack(epoch, false, readers - 1);
                if self
                    .meta()
                    .cas(&self.e.dev, entry.tuple, 0, w0, new, &mut self.w.ctx)
                    .is_ok()
                {
                    break;
                }
            }
        }
    }

    fn end(&mut self, _aborted: bool) {
        self.e.active.end(self.w.thread);
        self.finished = true;
    }
}

impl Drop for Txn<'_, '_> {
    fn drop(&mut self) {
        if !self.finished {
            // A dropped transaction aborts (panic-safety / harness
            // convenience).
            self.rollback();
        }
    }
}

/// Overlay pending write ops onto a buffer that starts at data offset
/// `base`.
fn overlay(buf: &mut [u8], base: u32, ops: &[(u32, Vec<u8>)]) {
    let lo = base as usize;
    let hi = lo + buf.len();
    for (off, bytes) in ops {
        let (s, e) = (*off as usize, *off as usize + bytes.len());
        // Intersect [s, e) with [lo, hi).
        let is = s.max(lo);
        let ie = e.min(hi);
        if is < ie {
            buf[is - lo..ie - lo].copy_from_slice(&bytes[is - s..ie - s]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::overlay;

    #[test]
    fn overlay_applies_in_order() {
        let mut buf = vec![0u8; 8];
        overlay(&mut buf, 0, &[(0, vec![1, 1, 1, 1]), (2, vec![9, 9])]);
        assert_eq!(buf, vec![1, 1, 9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn overlay_respects_window() {
        let mut buf = vec![0u8; 4]; // Covers offsets 4..8.
        overlay(&mut buf, 4, &[(0, vec![7; 6]), (6, vec![8, 8, 8, 8])]);
        // Op 1 covers 0..6 -> bytes 4,5 of the window; op 2 covers
        // 6..10 -> bytes 6,7.
        assert_eq!(buf, vec![7, 7, 8, 8]);
    }

    #[test]
    fn overlay_disjoint_is_noop() {
        let mut buf = vec![5u8; 4];
        overlay(&mut buf, 0, &[(10, vec![1, 2, 3])]);
        assert_eq!(buf, vec![5; 4]);
    }
}
