//! Concurrency-control metadata words.
//!
//! Each tuple carries two CC metadata words (Figure 5):
//!
//! * word 0 — the lock/timestamp word. Layout:
//!   `[epoch:8][lock:1][payload:55]`, where the payload is the reader
//!   count (2PL) or the write timestamp (TO/OCC and the MV variants).
//! * word 1 — the read timestamp (TO only).
//!
//! The 8-bit *epoch* implements lazy crash release: recovery bumps the
//! global epoch, and any word stamped with an older epoch is interpreted
//! as unlocked (with reader counts cleared but timestamps preserved).
//! This is how "clearing the lock bits" in §5.3 costs nothing for tuples
//! the logs never mention.
//!
//! [`MetaStore`] decides where the words live: in the tuple header in
//! NVM (Falcon, Inp, Outp) or in a DRAM side table (ZenS's Met-Cache,
//! which moves CC metadata churn out of NVM).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
#[cfg(feature = "race-check")]
use pmem_sim::trace::{AtomicKind, Event, MemOrder, DRAM_SPACE};
use pmem_sim::{CostModel, MemCtx, PmemDevice};

use falcon_storage::tuple::TupleRef;

/// Race-trace address of Met-Cache cell word `w` of `tuple`: the cells
/// live in engine DRAM, so they get a synthetic address in the
/// [`DRAM_SPACE`] namespace (disjoint from every device address).
#[cfg(feature = "race-check")]
#[inline]
fn met_addr(tuple: TupleRef, w: usize) -> u64 {
    DRAM_SPACE + tuple.addr.0 + (w as u64) * 8
}

/// Base of the race-trace lock-id namespace for Met-Cache shard locks
/// (the "META" tag keeps it disjoint from any other instrumented lock);
/// shard `i` is `MET_SHARD_LOCK | i`.
#[cfg(feature = "race-check")]
const MET_SHARD_LOCK: u64 = 0x4D45_5441 << 32;

/// Emit a shard-lock edge on the race trace. Acquire events must be
/// emitted *after* the guard is taken and release events *before* it is
/// dropped, so the trace's stream order matches the real lock order
/// (parking_lot serializes conflicting emissions through the guard
/// itself).
#[cfg(feature = "race-check")]
#[inline]
fn shard_lock_event(dev: &PmemDevice, thread: usize, shard: usize, excl: bool, acquire: bool) {
    if dev.trace_racing() {
        let lock = MET_SHARD_LOCK | shard as u64;
        dev.trace_emit(if acquire {
            Event::LockAcquire { thread, lock, excl }
        } else {
            Event::LockRelease { thread, lock, excl }
        });
    }
}

/// The lock bit.
pub const LOCK: u64 = 1 << 55;
/// Mask of the 55-bit payload.
pub const PAYLOAD: u64 = LOCK - 1;
/// Shift of the 8-bit epoch.
const EPOCH_SHIFT: u32 = 56;

/// Pack an epoch, lock bit, and payload into a metadata word.
#[inline]
pub fn pack(epoch: u64, locked: bool, payload: u64) -> u64 {
    debug_assert!(payload <= PAYLOAD);
    ((epoch & 0xff) << EPOCH_SHIFT) | (if locked { LOCK } else { 0 }) | payload
}

/// The epoch stamp of a word.
#[inline]
pub fn epoch_of(w: u64) -> u64 {
    w >> EPOCH_SHIFT
}

/// Whether the word is locked *in the given epoch* (stale locks read as
/// free).
#[inline]
pub fn is_locked(w: u64, epoch: u64) -> bool {
    epoch_of(w) == (epoch & 0xff) && w & LOCK != 0
}

/// The payload of a word, normalized for timestamp semantics: stale
/// epochs keep their payload (timestamps survive crashes).
#[inline]
pub fn ts_payload(w: u64) -> u64 {
    w & PAYLOAD
}

/// The payload of a word, normalized for counter semantics: stale
/// epochs read as zero (a crashed reader count is meaningless).
#[inline]
pub fn counter_payload(w: u64, epoch: u64) -> u64 {
    if epoch_of(w) == (epoch & 0xff) {
        w & PAYLOAD
    } else {
        0
    }
}

/// Where CC metadata lives.
pub enum MetaStore {
    /// In the tuple header, in NVM.
    Nvm,
    /// In a DRAM side table keyed by tuple address (ZenS Met-Cache).
    Dram(DramMeta),
}

impl MetaStore {
    /// Load metadata word `w` (0 or 1) of `tuple`.
    #[inline]
    pub fn load(&self, dev: &PmemDevice, tuple: TupleRef, w: usize, ctx: &mut MemCtx) -> u64 {
        match self {
            MetaStore::Nvm => dev.load_u64(tuple.addr.add(w as u64 * 8), ctx),
            MetaStore::Dram(m) => {
                // HB edge: Acquire pairs with the Release in `store` /
                // the AcqRel in `cas`, so a reader that observes a lock
                // word also observes the tuple writes that preceded its
                // release. Relaxed would be a race on the protected
                // payload — exactly what falcon-race's relaxed_publish
                // fixture demonstrates.
                let cell = m.cell(dev, tuple, ctx);
                #[cfg(feature = "race-check")]
                {
                    let thread = ctx.thread_id;
                    dev.trace_atomic(
                        || cell[w].load(Ordering::Acquire),
                        |_| Event::AtomicOp {
                            thread,
                            addr: met_addr(tuple, w),
                            kind: AtomicKind::Load,
                            order: MemOrder::Acquire,
                        },
                    )
                }
                #[cfg(not(feature = "race-check"))]
                cell[w].load(Ordering::Acquire)
            }
        }
    }

    /// Store metadata word `w` of `tuple`.
    #[inline]
    pub fn store(&self, dev: &PmemDevice, tuple: TupleRef, w: usize, val: u64, ctx: &mut MemCtx) {
        match self {
            MetaStore::Nvm => dev.store_u64(tuple.addr.add(w as u64 * 8), val, ctx),
            MetaStore::Dram(m) => {
                // HB edge: Release publishes every prior write (tuple
                // payload, version chain) to the next Acquire load of
                // this word — the unlock side of the CC protocols.
                let cell = m.cell(dev, tuple, ctx);
                #[cfg(feature = "race-check")]
                {
                    let thread = ctx.thread_id;
                    dev.trace_atomic(
                        || cell[w].store(val, Ordering::Release),
                        |()| Event::AtomicOp {
                            thread,
                            addr: met_addr(tuple, w),
                            kind: AtomicKind::Store,
                            order: MemOrder::Release,
                        },
                    );
                }
                #[cfg(not(feature = "race-check"))]
                cell[w].store(val, Ordering::Release);
            }
        }
    }

    /// CAS metadata word `w` of `tuple`.
    #[inline]
    pub fn cas(
        &self,
        dev: &PmemDevice,
        tuple: TupleRef,
        w: usize,
        old: u64,
        new: u64,
        ctx: &mut MemCtx,
    ) -> Result<u64, u64> {
        match self {
            MetaStore::Nvm => dev.cas_u64(tuple.addr.add(w as u64 * 8), old, new, ctx),
            MetaStore::Dram(m) => {
                // HB edges: success is the lock/version transition, so
                // AcqRel (acquire the releasing writer's history, release
                // our own); failure only observes, so Acquire suffices.
                // Audited down from SeqCst/SeqCst — no CC protocol here
                // relies on a single total order across *different* meta
                // words, only on per-word release/acquire chains, and
                // falcon-race's kernel sweeps run on exactly these
                // orderings.
                let cell = m.cell(dev, tuple, ctx);
                #[cfg(feature = "race-check")]
                {
                    let thread = ctx.thread_id;
                    dev.trace_atomic(
                        || cell[w].compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire),
                        |r| Event::AtomicOp {
                            thread,
                            addr: met_addr(tuple, w),
                            // A failed CAS performs no store.
                            kind: if r.is_ok() {
                                AtomicKind::Rmw
                            } else {
                                AtomicKind::Load
                            },
                            order: MemOrder::AcqRel,
                        },
                    )
                }
                #[cfg(not(feature = "race-check"))]
                cell[w].compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            }
        }
    }

    /// Whether metadata updates write NVM (true for [`MetaStore::Nvm`]).
    pub fn in_nvm(&self) -> bool {
        matches!(self, MetaStore::Nvm)
    }
}

impl core::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MetaStore::Nvm => write!(f, "MetaStore::Nvm"),
            MetaStore::Dram(_) => write!(f, "MetaStore::Dram"),
        }
    }
}

/// Number of shards in the DRAM metadata table.
const SHARDS: usize = 64;

/// One shard of the side table: tuple address → two metadata cells.
type MetaShard = RwLock<HashMap<u64, Arc<[AtomicU64; 2]>>>;

/// The DRAM CC-metadata side table (Met-Cache).
///
/// Cells are reference-counted so a caller's handle stays valid however
/// the shard map grows — and even across [`DramMeta::clear`], which can
/// run while the simulated crash tears workers down (out-of-place
/// engines keep creating new addresses, but the table is bounded by
/// heap size and recycled addresses reuse their cell).
pub struct DramMeta {
    shards: Box<[MetaShard]>,
    cost: CostModel,
}

impl DramMeta {
    /// Create an empty side table charging `cost.dram_hit` per probe.
    pub fn new(cost: CostModel) -> DramMeta {
        let shards: Vec<MetaShard> = (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect();
        DramMeta {
            shards: shards.into_boxed_slice(),
            cost,
        }
    }

    /// The metadata cell pair of `tuple`, created on first touch. The
    /// returned handle owns the allocation: it stays valid however the
    /// shard rehashes, and even if [`DramMeta::clear`] drops the table
    /// entry concurrently.
    ///
    /// Under `race-check` the shard `RwLock` acquisitions are emitted as
    /// lock edges on `dev`'s race trace (acquire after the guard is
    /// taken, release before it drops — see [`shard_lock_event`]);
    /// otherwise `dev` is unused.
    fn cell(&self, dev: &PmemDevice, tuple: TupleRef, ctx: &mut MemCtx) -> Arc<[AtomicU64; 2]> {
        #[cfg(not(feature = "race-check"))]
        let _ = dev;
        ctx.charge_dram_hit(&self.cost);
        let idx = (tuple.addr.0 >> 6) as usize % SHARDS;
        let shard = &self.shards[idx];
        {
            let rd = shard.read();
            #[cfg(feature = "race-check")]
            shard_lock_event(dev, ctx.thread_id, idx, false, true);
            let hit = rd.get(&tuple.addr.0).map(Arc::clone);
            #[cfg(feature = "race-check")]
            shard_lock_event(dev, ctx.thread_id, idx, false, false);
            drop(rd);
            if let Some(cell) = hit {
                return cell;
            }
        }
        let mut wr = shard.write();
        #[cfg(feature = "race-check")]
        shard_lock_event(dev, ctx.thread_id, idx, true, true);
        let cell = Arc::clone(
            wr.entry(tuple.addr.0)
                .or_insert_with(|| Arc::new([AtomicU64::new(0), AtomicU64::new(0)])),
        );
        #[cfg(feature = "race-check")]
        shard_lock_event(dev, ctx.thread_id, idx, true, false);
        drop(wr);
        cell
    }

    /// Drop all cells (used when rebuilding after a simulated crash:
    /// DRAM contents are lost).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_storage::tuple::TupleRef;
    use pmem_sim::{PAddr, SimConfig};

    #[test]
    fn pack_roundtrip() {
        let w = pack(3, true, 12345);
        assert_eq!(epoch_of(w), 3);
        assert!(is_locked(w, 3));
        assert_eq!(ts_payload(w), 12345);
    }

    #[test]
    fn stale_epoch_reads_unlocked() {
        let w = pack(3, true, 77);
        assert!(!is_locked(w, 4), "old-epoch lock is free");
        assert_eq!(ts_payload(w), 77, "timestamp survives the crash");
        assert_eq!(counter_payload(w, 4), 0, "reader count does not");
        assert_eq!(counter_payload(w, 3), 77);
    }

    #[test]
    fn epoch_wraps_at_8_bits() {
        let w = pack(256 + 5, false, 1);
        assert_eq!(epoch_of(w), 5);
    }

    #[test]
    fn nvm_store_roundtrip() {
        let dev = PmemDevice::new(SimConfig::small()).unwrap();
        let mut ctx = MemCtx::new(0);
        let store = MetaStore::Nvm;
        let t = TupleRef::new(PAddr(4096));
        store.store(&dev, t, 0, 0xAA, &mut ctx);
        store.store(&dev, t, 1, 0xBB, &mut ctx);
        assert_eq!(store.load(&dev, t, 0, &mut ctx), 0xAA);
        assert_eq!(store.load(&dev, t, 1, &mut ctx), 0xBB);
        assert_eq!(store.cas(&dev, t, 0, 0xAA, 0xCC, &mut ctx), Ok(0xAA));
        assert_eq!(store.cas(&dev, t, 0, 0xAA, 0xDD, &mut ctx), Err(0xCC));
        assert!(store.in_nvm());
    }

    #[test]
    fn dram_store_roundtrip() {
        let dev = PmemDevice::new(SimConfig::small()).unwrap();
        let mut ctx = MemCtx::new(0);
        let store = MetaStore::Dram(DramMeta::new(CostModel::default()));
        let t = TupleRef::new(PAddr(8192));
        assert_eq!(store.load(&dev, t, 0, &mut ctx), 0, "cells default to 0");
        store.store(&dev, t, 0, 42, &mut ctx);
        assert_eq!(store.load(&dev, t, 0, &mut ctx), 42);
        assert_eq!(store.cas(&dev, t, 0, 42, 43, &mut ctx), Ok(42));
        assert!(!store.in_nvm());
        assert!(ctx.stats.dram_accesses > 0, "Met-Cache charges DRAM");
        // NVM was never touched for metadata.
        assert_eq!(ctx.stats.cache_misses, 0);
    }

    #[test]
    fn dram_cells_are_concurrent() {
        let dev = PmemDevice::new(SimConfig::small()).unwrap();
        let store = std::sync::Arc::new(DramMeta::new(CostModel::default()));
        std::thread::scope(|s| {
            for w in 0..4 {
                let store = std::sync::Arc::clone(&store);
                let dev = dev.clone();
                s.spawn(move || {
                    let mut ctx = MemCtx::new(w);
                    let t = TupleRef::new(PAddr(64)); // Same tuple for all.
                    for _ in 0..1000 {
                        store.cell(&dev, t, &mut ctx)[0].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let mut ctx = MemCtx::new(0);
        assert_eq!(
            store.cell(&dev, TupleRef::new(PAddr(64)), &mut ctx)[0].load(Ordering::Relaxed),
            4000
        );
    }

    #[test]
    fn clear_does_not_invalidate_live_handles() {
        // The hazard the Arc design removes: a handle obtained before a
        // crash-time clear() must stay usable (it owns the allocation).
        let dev = PmemDevice::new(SimConfig::small()).unwrap();
        let store = DramMeta::new(CostModel::default());
        let mut ctx = MemCtx::new(0);
        let t = TupleRef::new(PAddr(128));
        let cell = store.cell(&dev, t, &mut ctx);
        cell[0].store(7, Ordering::Relaxed);
        store.clear();
        assert_eq!(cell[0].load(Ordering::Relaxed), 7, "handle survives");
        // The table itself starts fresh.
        assert_eq!(store.cell(&dev, t, &mut ctx)[0].load(Ordering::Relaxed), 0);
    }
}
