//! Recovery (§5.3).
//!
//! Falcon's path: open the catalog, bump the crash epoch (which lazily
//! clears every lock in the system), attach the NVM indexes (instant),
//! and replay the small log windows — `COMMITTED` slots re-apply their
//! redo records in TID order (idempotent), `UNCOMMITTED` slots have
//! their exec-time index inserts undone. The data touched is bounded by
//! the window size, not the database size: millisecond-scale recovery.
//!
//! The out-of-place / DRAM-index engines pay the scan the paper measures
//! for ZenS: every heap slot is visited to rebuild the DRAM index (and,
//! for Outp, to clean up uncommitted versions), so recovery time grows
//! with the tuple heap.

use std::collections::HashMap;

use pmem_sim::{MemCtx, PAddr, PersistDomain, PmemDevice};

use falcon_storage::tuple::{TupleRef, FLAG_DELETED, HDR_DATA};
use falcon_storage::{Catalog, NvmAllocator, MAX_THREADS};

use crate::checkpoint::{self, CkptRead};
use crate::config::{CcAlgo, EngineConfig, IndexLocation, UpdateStrategy};
use crate::engine::{Engine, FLAG_OBSOLETE, FLAG_TOMBSTONE};
use crate::error::EngineError;
use crate::logwindow::{self, RedoKind};
use crate::meta::{self, DramMeta, MetaStore};
use crate::table::{Table, TableDef};
use crate::tid::{ActiveTable, TidGen};
use crate::tuplecache::TupleCache;
use crate::versions::VersionHeap;

/// Index-root slot reserved for engine state (must match engine.rs).
const ENGINE_SLOT: usize = falcon_storage::layout::INDEX_SLOTS - 1;

/// What recovery did and how long (in virtual time) each step took.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total virtual nanoseconds.
    pub total_ns: u64,
    /// Catalog + in-DRAM structure initialization.
    pub catalog_ns: u64,
    /// Index attach/repair (NVM) or rebuild scan (DRAM).
    pub index_ns: u64,
    /// Log-window replay.
    pub replay_ns: u64,
    /// Committed transactions replayed from windows.
    pub committed_replayed: usize,
    /// Uncommitted transactions rolled back from windows.
    pub uncommitted_discarded: usize,
    /// Heap slots visited (out-of-place / DRAM-index rebuild).
    pub tuples_scanned: u64,
    /// Redo records dropped because a crash tore them mid-append (the
    /// valid prefix of the stream was still replayed).
    pub torn_records: u64,
    /// Redo records dropped because their CRC or framing was damaged
    /// *behind* the commit point (media corruption, not a torn tail).
    pub corrupt_records: u64,
    /// Log windows that contained at least one torn or corrupt record
    /// and were recovered around rather than trusted wholesale.
    pub windows_salvaged: u64,
    /// Structural repairs the NVM indexes performed while attaching —
    /// e.g. mid-split B⁺-tree crash images rebuilt from the leaf chain.
    pub index_repairs: u64,
    /// Spill-region bytes the bounded tail scan walked (from the
    /// checkpoint mark to the durable tail — the O(active-window) part).
    pub spill_bytes_scanned: u64,
    /// Spill records the tail scan CRC-validated (markers included).
    pub spill_records_scanned: u64,
    /// Slot overflow extents found truncated behind a published
    /// checkpoint (counted, non-fatal: the data they described was
    /// written back before the epoch swung).
    pub spill_truncated_refs: u64,
    /// Spill bytes reclaimed by the post-replay tail reset.
    pub spill_bytes_truncated: u64,
    /// Highest published checkpoint epoch found across threads.
    pub ckpt_epoch: u64,
    /// Per-thread checkpoint records rejected by the CRC/epoch check;
    /// each one forced a full (mark 0) spill scan for its thread.
    pub ckpt_meta_corrupt: u64,
}

/// Recover an engine from a crashed device. `defs` must match the
/// definitions the database was created with (key extractors are code).
pub fn recover(
    dev: PmemDevice,
    cfg: EngineConfig,
    defs: &[TableDef],
) -> Result<(Engine, RecoveryReport), crate::error::EngineError> {
    let mut ctx = MemCtx::new(0);
    let mut report = RecoveryReport::default();

    // --- Step 0: catalog and DRAM structures --------------------------
    let catalog = Catalog::open(dev.clone(), &mut ctx)?;
    let epoch = catalog.bump_epoch(&mut ctx);
    if dev.config().domain == PersistDomain::Adr {
        // The new epoch is what invalidates stale locks; under ADR it
        // must reach media before replay publishes meta words that
        // reference it.
        dev.flush_range(PAddr(falcon_storage::layout::SB_EPOCH), 8, &mut ctx);
        dev.sfence(&mut ctx);
    }
    let alloc = NvmAllocator::new(dev.clone());
    let cost = dev.config().cost.clone();
    let watermarks = PAddr(catalog.index_root(ENGINE_SLOT, 0, &mut ctx));
    report.catalog_ns = ctx.clock;

    // --- Step 1: indexes ------------------------------------------------
    let num_tables = catalog.num_tables(&mut ctx);
    if num_tables as usize > falcon_storage::MAX_TABLES {
        return Err(EngineError::Corrupt(format!(
            "catalog claims {num_tables} tables (max {})",
            falcon_storage::MAX_TABLES
        )));
    }
    if num_tables as usize > defs.len() {
        return Err(EngineError::Corrupt(format!(
            "catalog claims {num_tables} tables but only {} definitions supplied",
            defs.len()
        )));
    }
    let mut tables = Vec::with_capacity(num_tables as usize);
    for (id, def) in defs.iter().enumerate().take(num_tables as usize) {
        tables.push(Table::open(
            &alloc, &catalog, def, cfg.index, epoch, id as u32, &mut ctx,
        )?);
    }
    let mut max_ts = catalog.ts_hint(&mut ctx);
    for t in &tables {
        report.index_repairs += t.primary.structural_repairs();
        if let Some(sec) = &t.secondary {
            report.index_repairs += sec.structural_repairs();
        }
    }
    report.index_ns = ctx.clock - report.catalog_ns;

    // --- Step 2: log replay / heap scan ---------------------------------
    let replay_start = ctx.clock;
    match cfg.update {
        UpdateStrategy::InPlace => {
            let ckpt_area = checkpoint::area_if_valid(&dev, watermarks);
            replay_windows(
                &dev,
                &catalog,
                &cfg,
                &tables,
                epoch,
                ckpt_area,
                &mut max_ts,
                &mut report,
                &mut ctx,
            )?;
            if cfg.index == IndexLocation::Dram {
                // DRAM indexes must be rebuilt from the heap: this is
                // what makes "Falcon (DRAM Index)" recovery slow.
                rebuild_dram_indexes(&tables, &mut report, &mut ctx);
            }
        }
        UpdateStrategy::OutOfPlace => {
            let span = MAX_THREADS as u64 * 64;
            if watermarks.0 == 0
                || !watermarks.0.is_multiple_of(8)
                || watermarks
                    .0
                    .checked_add(span)
                    .is_none_or(|end| end > dev.capacity())
            {
                return Err(EngineError::Corrupt(format!(
                    "engine watermark root {:#x} out of range",
                    watermarks.0
                )));
            }
            scan_rebuild_out_of_place(
                &dev,
                &tables,
                watermarks,
                epoch,
                &mut max_ts,
                &mut report,
                &mut ctx,
            );
        }
    }
    report.replay_ns = ctx.clock - replay_start;
    report.total_ns = ctx.clock;

    let engine = Engine {
        tid_gen: TidGen::new(max_ts),
        active: ActiveTable::new(cfg.threads),
        versions: VersionHeap::new(cfg.threads, epoch, cost.clone()),
        meta: if cfg.tuple_cache {
            MetaStore::Dram(DramMeta::new(cost.clone()))
        } else {
            MetaStore::Nvm
        },
        tuple_cache: cfg
            .tuple_cache
            .then(|| TupleCache::new(cfg.tuple_cache_capacity, cost)),
        epoch,
        watermarks,
        defs: defs.to_vec(),
        tables,
        catalog,
        alloc,
        dev,
        cfg,
    };
    Ok((engine, report))
}

/// True iff `[tuple, tuple + HDR_DATA + off + len)` is a plausible
/// in-bounds tuple extent. Records that fail this came from a damaged
/// window (e.g. bit-rot that survived the CRC by luck) and are skipped
/// rather than dereferenced.
fn tuple_extent_ok(dev: &PmemDevice, tuple: u64, off: u64, len: u64) -> bool {
    tuple != 0
        && tuple.is_multiple_of(8)
        && off
            .checked_add(len)
            .and_then(|span| tuple.checked_add(HDR_DATA + span))
            .is_some_and(|end| end <= dev.capacity())
}

#[allow(clippy::too_many_arguments)]
fn replay_windows(
    dev: &PmemDevice,
    catalog: &Catalog,
    cfg: &EngineConfig,
    tables: &[Table],
    epoch: u64,
    ckpt_area: Option<PAddr>,
    max_ts: &mut u64,
    report: &mut RecoveryReport,
    ctx: &mut MemCtx,
) -> Result<(), EngineError> {
    let adr = dev.config().domain == PersistDomain::Adr;
    // Gather slots from every thread's window.
    let mut committed = Vec::new();
    let mut uncommitted = Vec::new();
    let mut window_bases = Vec::new();
    for t in 0..MAX_THREADS {
        let base = catalog.log_window(t, ctx);
        if base == 0 {
            continue;
        }
        window_bases.push(PAddr(base));
        let mut damaged = false;
        // The thread's checkpoint record bounds its spill scan: a valid
        // record starts the scan at its mark; a corrupt one (bit-rot)
        // falls back to a full scan from 0 — unbounded but safe.
        let mut mark = 0u64;
        if let Some(area) = ckpt_area {
            match checkpoint::read_record(dev, area, t, ctx) {
                CkptRead::None => {}
                CkptRead::Valid { epoch: ce, mark: m } => {
                    report.ckpt_epoch = report.ckpt_epoch.max(ce);
                    mark = m;
                }
                CkptRead::Corrupt => report.ckpt_meta_corrupt += 1,
            }
        }
        if let Some(scan) = logwindow::scan_spill(dev, PAddr(base), mark, ctx) {
            report.spill_bytes_scanned += scan.bytes;
            report.spill_records_scanned += scan.records;
            damaged |= scan.damaged;
        }
        for slot in logwindow::read_window(dev, PAddr(base), ctx)? {
            *max_ts = (*max_ts).max(TidGen::ts_of(slot.tid));
            damaged |= slot.damaged();
            report.torn_records += slot.torn_records;
            report.corrupt_records += slot.corrupt_records;
            report.spill_truncated_refs += slot.spill_truncated_refs;
            match slot.state {
                logwindow::COMMITTED => committed.push(slot),
                logwindow::UNCOMMITTED => uncommitted.push(slot),
                _ => {}
            }
        }
        if damaged {
            report.windows_salvaged += 1;
        }
    }
    // Replay committed transactions in TID order (idempotent; ordering
    // resolves write-write overlap between in-flight transactions).
    committed.sort_by_key(|s| s.tid);
    // A committed Delete must not re-free a tuple that a *later*
    // committed Insert re-allocated: the insert's alloc popped the slot
    // off the delete list before its txn could reach COMMITTED, so the
    // media list no longer holds it. Re-freeing would link the slot —
    // now carrying the re-inserted row — back into the list, and the
    // next list append would write a next-pointer straight through the
    // live row data.
    let mut reinserted: HashMap<u64, u64> = HashMap::new();
    for slot in &committed {
        for rec in &slot.records {
            if rec.kind == RedoKind::Insert {
                let t = reinserted.entry(rec.tuple).or_insert(0);
                *t = (*t).max(slot.tid);
            }
        }
    }
    for slot in &committed {
        for rec in &slot.records {
            if rec.table as usize >= tables.len()
                || !tuple_extent_ok(dev, rec.tuple, u64::from(rec.off), rec.data.len() as u64)
            {
                report.corrupt_records += 1;
                continue;
            }
            let tuple = TupleRef::new(PAddr(rec.tuple));
            let table = &tables[rec.table as usize];
            match rec.kind {
                RedoKind::Update => {
                    tuple.write_data(dev, u64::from(rec.off), &rec.data, ctx);
                    if adr {
                        tuple.flush_all(dev, u64::from(rec.off) + rec.data.len() as u64, ctx);
                    }
                }
                RedoKind::Insert => {
                    tuple.write_data(dev, 0, &rec.data, ctx);
                    tuple.set_deleted(dev, false, ctx);
                    tuple.set_version_ptr(dev, 0, ctx);
                    if adr {
                        tuple.flush_all(dev, rec.data.len() as u64, ctx);
                    }
                    let _ = table.primary.insert(rec.key, rec.tuple, ctx);
                    if let (Some(sec), Some(kf)) = (&table.secondary, table.secondary_key) {
                        let _ = sec.insert(kf(&table.schema, &rec.data), rec.tuple, ctx);
                    }
                }
                RedoKind::Delete => {
                    // Thread 0 adopts the orphaned slot; free_slot is
                    // idempotent (no-op if the apply already ran). Skip
                    // it entirely when a later committed insert re-uses
                    // the tuple (see `reinserted` above).
                    let reused = reinserted.get(&rec.tuple).is_some_and(|&t| t > slot.tid);
                    if !reused {
                        table.heap.free_slot(0, tuple, slot.tid, ctx);
                        if adr {
                            tuple.flush_all(dev, 16, ctx);
                        }
                    }
                    table.primary.remove(rec.key, ctx);
                }
                RedoKind::VersionCopy => {}
            }
            if rec.kind != RedoKind::Delete && rec.kind != RedoKind::VersionCopy {
                // Publish the write timestamp and clear locks, exactly
                // as the commit would have.
                match cfg.cc.base() {
                    CcAlgo::TwoPl => {
                        dev.store_u64(
                            tuple.addr.add(8),
                            meta::pack(epoch, false, slot.tid & meta::PAYLOAD),
                            ctx,
                        );
                        dev.store_u64(tuple.cc_addr(), meta::pack(epoch, false, 0), ctx);
                    }
                    _ => {
                        dev.store_u64(
                            tuple.cc_addr(),
                            meta::pack(epoch, false, slot.tid & meta::PAYLOAD),
                            ctx,
                        );
                    }
                }
                if adr {
                    dev.flush_range(tuple.addr, 16, ctx);
                }
            }
        }
        report.committed_replayed += 1;
    }
    // Undo the exec-time index inserts of uncommitted transactions.
    for slot in &uncommitted {
        for rec in &slot.records {
            if rec.kind != RedoKind::Insert {
                continue;
            }
            if rec.table as usize >= tables.len()
                || !tuple_extent_ok(dev, rec.tuple, 0, rec.data.len() as u64)
            {
                report.corrupt_records += 1;
                continue;
            }
            let table = &tables[rec.table as usize];
            if table.primary.get(rec.key, ctx) == Some(rec.tuple) {
                table.primary.remove(rec.key, ctx);
            }
            if let (Some(sec), Some(kf)) = (&table.secondary, table.secondary_key) {
                let sk = kf(&table.schema, &rec.data);
                if sec.get(sk, ctx) == Some(rec.tuple) {
                    sec.remove(sk, ctx);
                }
            }
            // The slot itself leaks until the next reuse cycle; marking
            // it deleted makes it reclaimable immediately.
            let tuple = TupleRef::new(PAddr(rec.tuple));
            tables[rec.table as usize].heap.free_slot(0, tuple, 0, ctx);
            if adr {
                tuple.flush_all(dev, 16, ctx);
            }
        }
        report.uncommitted_discarded += 1;
    }
    // Every slot has been replayed or discarded: free the windows so
    // the reopened workers start clean. Under ADR the replayed data must
    // be on media *before* any window flips to FREE — otherwise a crash
    // here could persist the FREE and lose the committed effects it
    // stood for.
    if adr {
        dev.sfence(ctx);
    }
    for base in window_bases {
        logwindow::clear_window(dev, base, ctx);
        // Every slot was replayed or discarded, so the whole spill tail
        // is dead: reset it. This is also what keeps a checkpoint-less
        // configuration's tail from growing across restarts.
        report.spill_bytes_truncated += logwindow::reset_spill_tail(dev, base, ctx);
    }
    Ok(())
}

/// Rebuild volatile DRAM indexes by scanning every heap slot.
fn rebuild_dram_indexes(tables: &[Table], report: &mut RecoveryReport, ctx: &mut MemCtx) {
    for table in tables {
        let dev = table.heap.device().clone();
        let mut entries: Vec<(u64, u64, u64)> = Vec::new(); // (key, addr, sec)
        table.heap.scan(ctx, |tuple, ctx| {
            report.tuples_scanned += 1;
            let flags = tuple.flags(&dev, ctx);
            if flags & (FLAG_DELETED | FLAG_OBSOLETE) != 0 {
                return;
            }
            let mut row = vec![0u8; table.schema.tuple_size() as usize];
            tuple.read_data(&dev, 0, &mut row, ctx);
            let key = (table.primary_key)(&table.schema, &row);
            let sec = table
                .secondary_key
                .map(|kf| kf(&table.schema, &row))
                .unwrap_or(0);
            entries.push((key, tuple.addr.0, sec));
        });
        for (key, addr, sec) in entries {
            let _ = table.primary.insert(key, addr, ctx);
            if let Some(s) = &table.secondary {
                let _ = s.insert(sec, addr, ctx);
            }
        }
    }
}

/// The ZenS/Outp recovery scan: find the latest committed version of
/// every key, rebuild (or repair) indexes, recycle garbage.
///
/// A slot's commit TID lives in its flags word (bits 8+); a slot is
/// committed iff that TID is at or below its thread's commit watermark
/// (or zero: bulk-loaded). The `FLAG_OBSOLETE` hint is deliberately
/// ignored — it is written before the watermark, so only the
/// latest-committed-version computation is trustworthy. A committed
/// tombstone version kills its key.
fn scan_rebuild_out_of_place(
    dev: &PmemDevice,
    tables: &[Table],
    watermarks: PAddr,
    epoch: u64,
    max_ts: &mut u64,
    report: &mut RecoveryReport,
    ctx: &mut MemCtx,
) {
    // Per-thread commit watermarks bound which TIDs committed.
    let mut wm = [0u64; 256];
    for (t, w) in wm.iter_mut().enumerate().take(MAX_THREADS) {
        *w = dev.load_u64(watermarks.add(t as u64 * 64), ctx);
        *max_ts = (*max_ts).max(TidGen::ts_of(*w));
    }
    for table in tables {
        // key -> (tid, addr, sec_key, tombstone) of the latest
        // committed version.
        let mut latest: HashMap<u64, (u64, u64, u64, bool)> = HashMap::new();
        let mut garbage: Vec<u64> = Vec::new();
        table.heap.scan(ctx, |tuple, ctx| {
            report.tuples_scanned += 1;
            let flags = tuple.flags(dev, ctx);
            if flags & FLAG_DELETED != 0 {
                return; // Already on a delete list.
            }
            let tid = flags >> 8;
            let committed = tid == 0 || tid <= wm[TidGen::thread_of(tid)];
            if !committed {
                garbage.push(tuple.addr.0);
                return;
            }
            let tombstone = flags & FLAG_TOMBSTONE != 0;
            let (key, sec) = if tombstone {
                // Tombstones record the deleted key in their data area.
                let mut k = [0u8; 8];
                tuple.read_data(dev, 0, &mut k, ctx);
                (u64::from_le_bytes(k), 0)
            } else {
                let mut row = vec![0u8; table.schema.tuple_size() as usize];
                tuple.read_data(dev, 0, &mut row, ctx);
                (
                    (table.primary_key)(&table.schema, &row),
                    table
                        .secondary_key
                        .map(|kf| kf(&table.schema, &row))
                        .unwrap_or(0),
                )
            };
            let e = latest
                .entry(key)
                .or_insert((tid, tuple.addr.0, sec, tombstone));
            if (tid, tuple.addr.0) != (e.0, e.1) {
                if tid >= e.0 {
                    garbage.push(e.1);
                    *e = (tid, tuple.addr.0, sec, tombstone);
                } else {
                    garbage.push(tuple.addr.0);
                }
            }
        });
        // Point the indexes at the winners (repairing NVM indexes whose
        // update raced the crash; rebuilding DRAM indexes from empty),
        // and kill keys whose winner is a tombstone.
        for (key, (_tid, addr, sec, tombstone)) in &latest {
            if *tombstone {
                if table.primary.get(*key, ctx).is_some() {
                    table.primary.remove(*key, ctx);
                }
                garbage.push(*addr);
                continue;
            }
            match table.primary.get(*key, ctx) {
                Some(cur) if cur == *addr => {}
                Some(_) => {
                    table.primary.update(*key, *addr, ctx);
                }
                None => {
                    let _ = table.primary.insert(*key, *addr, ctx);
                }
            }
            if let Some(s) = &table.secondary {
                match s.get(*sec, ctx) {
                    Some(cur) if cur == *addr => {}
                    Some(_) => {
                        s.update(*sec, *addr, ctx);
                    }
                    None => {
                        let _ = s.insert(*sec, *addr, ctx);
                    }
                }
            }
        }
        // Remove index entries whose key has no committed winner (an
        // uncommitted insert caught mid-flight in an NVM index), then
        // recycle the garbage slots.
        for addr in garbage {
            let tuple = TupleRef::new(PAddr(addr));
            let mut row = vec![0u8; table.schema.tuple_size() as usize];
            tuple.read_data(dev, 0, &mut row, ctx);
            let key = (table.primary_key)(&table.schema, &row);
            match latest.get(&key) {
                Some(win) if !win.3 => {}
                _ => {
                    if table.primary.get(key, ctx) == Some(addr) {
                        table.primary.remove(key, ctx);
                    }
                }
            }
            table.heap.free_slot(0, tuple, 0, ctx);
        }
    }
    let _ = epoch;
}
