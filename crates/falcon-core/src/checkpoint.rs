//! Incremental fuzzy checkpointing: bounded crash recovery for the
//! persistent overflow-spill log.
//!
//! The small log window (§4.3) keeps per-transaction redo bounded, but
//! the overflow-spill region it drains into is append-only: without
//! reclamation its tail — and with it the recovery-time scan — grows
//! with the *history* of spilling transactions, not with the active
//! window. The checkpoint protocol bounds it:
//!
//! 1. **Write back** the dirty tuple lines that the selective-flush
//!    hot skip left cache-resident (`clwb` under ADR; a no-op under
//!    eADR, where the cache already sits in the persistence domain),
//!    then fence. After this, every effect the about-to-be-truncated
//!    redo describes is durable without the redo.
//! 2. **Publish** the new snapshot epoch and the spill-tail mark with a
//!    single fenced atomic swing: the `(epoch, mark, crc)` triple goes
//!    to the *inactive* bank of a double-banked per-thread record, is
//!    flushed and fenced, and only then does one 8-byte store swing the
//!    epoch word over to it (flushed and fenced again — the swing store
//!    re-dirties the line). A crash at any instant yields exactly the
//!    pre- or the post-checkpoint record, never a torn mix.
//! 3. **Truncate** the spill region behind the published mark (legal
//!    whenever the current transaction has no live spill extent).
//!
//! Recovery reads the record (CRC-validated; corruption falls back to a
//! full-tail scan — see `CkptRead::Corrupt`), scans only `[mark, tail)`
//! of each spill region, and resets the tails: restart work is
//! O(active window), not O(spill history).
//!
//! The records live in the engine's watermark page: the watermark array
//! occupies its first `MAX_THREADS * 64` bytes, and the checkpoint
//! array starts at [`CKPT_OFF`] in the same (already allocated, zeroed)
//! page — a zeroed swing word reads as "no checkpoint", so pre-existing
//! images stay compatible.

#[cfg(feature = "persist-check")]
use pmem_sim::trace::Event;
use pmem_sim::{MemCtx, PAddr, PmemDevice};

use falcon_storage::MAX_THREADS;

use crate::crc;
use crate::engine::{Engine, Worker};
use crate::obs::Phase;

/// Byte offset of the checkpoint-record array from the engine's
/// watermark-page base.
pub const CKPT_OFF: u64 = 4096;

/// Stride of one per-thread checkpoint record (one cache line).
pub const CKPT_STRIDE: u64 = 64;

// Record layout (one 64 B line per thread).
/// Offset of the epoch swing word (0 = no checkpoint published).
pub const CK_SWING: u64 = 0;
/// Offset of bank A — `(epoch, mark, crc)`, used by odd epochs.
pub const CK_BANK_A: u64 = 8;
/// Offset of bank B — `(epoch, mark, crc)`, used by even epochs.
pub const CK_BANK_B: u64 = 32;

/// The checkpoint-record array base for a watermark page at `wm`.
pub fn area_base(wm: PAddr) -> PAddr {
    wm.add(CKPT_OFF)
}

/// The checkpoint area for the watermark page at `wm`, when the address
/// is plausible and the whole record array fits the device; `None`
/// otherwise (a damaged catalog root — recovery then treats the image
/// as having no checkpoints, which is always safe, merely slower).
pub fn area_if_valid(dev: &PmemDevice, wm: PAddr) -> Option<PAddr> {
    let span = CKPT_OFF + MAX_THREADS as u64 * CKPT_STRIDE;
    if wm.0 == 0
        || !wm.0.is_multiple_of(64)
        || wm
            .0
            .checked_add(span)
            .is_none_or(|end| end > dev.capacity())
    {
        return None;
    }
    Some(area_base(wm))
}

/// Address of `thread`'s checkpoint record within `area`.
pub fn record_addr(area: PAddr, thread: usize) -> PAddr {
    area.add(thread as u64 * CKPT_STRIDE)
}

/// Offset of the bank that stores `epoch` (banks alternate by parity,
/// so a publish always writes the bank the *current* record is not
/// reading from).
fn bank_of(epoch: u64) -> u64 {
    if epoch & 1 == 1 {
        CK_BANK_A
    } else {
        CK_BANK_B
    }
}

/// CRC-32C (zero-extended to a word) over `(thread, epoch, mark)`:
/// detects bit-rot in a bank and cross-thread record mixups.
fn rec_crc(thread: usize, epoch: u64, mark: u64) -> u64 {
    let st = crc::update(0xFFFF_FFFF, &(thread as u64).to_le_bytes());
    let st = crc::update(st, &epoch.to_le_bytes());
    u64::from(crc::update(st, &mark.to_le_bytes()) ^ 0xFFFF_FFFF)
}

/// Pseudo-TID a boundary publish is traced under (persistency checker):
/// top bit set so it can never collide with an engine TID.
#[cfg(feature = "persist-check")]
fn pseudo_tid(thread: usize, epoch: u64) -> u64 {
    0x8000_0000_0000_0000 | ((thread as u64) << 32) | (epoch & 0xFFFF_FFFF)
}

/// What reading a per-thread checkpoint record found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptRead {
    /// No checkpoint was ever published (swing word zero).
    None,
    /// A consistent published checkpoint.
    Valid {
        /// The published snapshot epoch.
        epoch: u64,
        /// The spill-tail mark captured by that checkpoint.
        mark: u64,
    },
    /// The swing word points at a bank whose epoch or CRC does not
    /// match: media corruption. The caller must fall back to a full
    /// spill scan (mark 0) — safe, merely unbounded.
    Corrupt,
}

/// Publish `(epoch, mark)` for `thread` with the fenced atomic swing.
///
/// `boundary` publishes (between transactions) are announced to the
/// persistency checker as a pseudo-transaction so the R1–R3 rules audit
/// the ordering; mid-transaction backpressure publishes stay silent (a
/// nested `TxnBegin` would clobber the analyzer's per-thread state).
pub fn publish(
    dev: &PmemDevice,
    area: PAddr,
    thread: usize,
    epoch: u64,
    mark: u64,
    boundary: bool,
    ctx: &mut MemCtx,
) {
    #[cfg(not(feature = "persist-check"))]
    let _ = boundary;
    let rec = record_addr(area, thread);
    let bank = rec.add(bank_of(epoch));
    #[cfg(feature = "persist-check")]
    if boundary {
        dev.trace_emit(Event::TxnBegin {
            thread: ctx.thread_id,
            tid: pseudo_tid(thread, epoch),
        });
        dev.trace_emit(Event::LogRange {
            thread: ctx.thread_id,
            addr: bank.0,
            len: 24,
        });
    }
    dev.store_u64(bank, epoch, ctx);
    dev.store_u64(bank.add(8), mark, ctx);
    dev.store_u64(bank.add(16), rec_crc(thread, epoch, mark), ctx);
    #[cfg(feature = "persist-check")]
    if boundary {
        dev.trace_emit(Event::DurableHint {
            thread: ctx.thread_id,
            addr: bank.0,
            len: 24,
        });
    }
    if !skip_bank_flush() {
        dev.clwb_if_adr(rec, ctx);
    }
    if !skip_pre_swing_fence() {
        dev.sfence(ctx);
    }
    // The swing: one aligned 8-byte store. Readers see the old epoch or
    // the new one; the bank it selects is already durable.
    #[cfg(feature = "persist-check")]
    if boundary {
        dev.trace_emit(Event::CommitRecord {
            thread: ctx.thread_id,
            addr: rec.0,
        });
    }
    dev.store_u64(rec.add(CK_SWING), epoch, ctx);
    #[cfg(feature = "persist-check")]
    if boundary {
        dev.trace_emit(Event::DurableHint {
            thread: ctx.thread_id,
            addr: rec.0,
            len: 8,
        });
    }
    // The swing store re-dirtied the record's (single) cache line: under
    // ADR it must be flushed again or the publish could evaporate.
    if !skip_bank_flush() {
        dev.clwb_if_adr(rec, ctx);
    }
    dev.sfence(ctx);
    #[cfg(feature = "persist-check")]
    if boundary {
        dev.trace_emit(Event::TxnCommit {
            thread: ctx.thread_id,
            tid: pseudo_tid(thread, epoch),
        });
    }
}

/// Read and validate `thread`'s checkpoint record.
pub fn read_record(dev: &PmemDevice, area: PAddr, thread: usize, ctx: &mut MemCtx) -> CkptRead {
    let rec = record_addr(area, thread);
    let swing = dev.load_u64(rec.add(CK_SWING), ctx);
    if swing == 0 {
        return CkptRead::None;
    }
    let bank = rec.add(bank_of(swing));
    let epoch = dev.load_u64(bank, ctx);
    let mark = dev.load_u64(bank.add(8), ctx);
    let sum = dev.load_u64(bank.add(16), ctx);
    if epoch != swing || sum != rec_crc(thread, epoch, mark) {
        return CkptRead::Corrupt;
    }
    CkptRead::Valid { epoch, mark }
}

/// Per-worker checkpoint counters (always compiled — the proptest
/// suites reconcile them without the `obs` feature).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Checkpoints published by this worker.
    pub published: u64,
    /// Dirty tuple lines written back (drained) by checkpoints.
    pub dirty_writebacks: u64,
    /// Peak size of the deferred dirty-line set.
    pub dirty_peak: u64,
    /// Spill-cap stalls resolved by an inline (backpressure) checkpoint
    /// instead of an abort.
    pub backpressure_stalls: u64,
    /// Spill bytes reclaimed by checkpoint truncation.
    pub spill_bytes_truncated: u64,
    /// Truncations that reclaimed at least one byte.
    pub spill_truncations: u64,
}

/// Run one fuzzy checkpoint on `w`'s log window: write back the
/// deferred dirty lines, publish the epoch + spill mark, truncate the
/// spill tail. A no-op on engines without a window. `boundary` selects
/// whether the publish is traced (see [`publish`]).
pub(crate) fn run(e: &Engine, w: &mut Worker, boundary: bool) {
    if w.window.is_none() {
        return;
    }
    let Some(area) = area_if_valid(&e.dev, e.watermarks) else {
        return;
    };
    let t0 = w.ctx.clock;
    let ap = w.ctx.attr_phase(Phase::Checkpoint as usize);
    // 1. Dirty write-back, fenced before the publish: once the epoch
    // swings, the redo behind the mark may be truncated, so the data it
    // described must already be durable.
    w.ckpt.dirty_peak = w.ckpt.dirty_peak.max(w.ckpt_dirty.len() as u64);
    for line in w.ckpt_dirty.drain() {
        e.dev.clwb_if_adr(PAddr(line), &mut w.ctx);
        w.ckpt.dirty_writebacks += 1;
    }
    e.dev.sfence(&mut w.ctx);
    // 2 + 3. Publish the fenced atomic swing, then reclaim. With no
    // live spill extent the whole tail dies behind the published mark
    // (truncation). Mid-transaction — a backpressure checkpoint under a
    // transaction that already spilled — truncation would clip the live
    // redo, so the region is compacted around it instead and the mark
    // published as 0: the surviving stream starts at the region base.
    let epoch = w.ckpt_epoch + 1;
    let thread = w.thread;
    let win = w.window.as_mut().expect("checked above");
    let freed = if win.overflowed() {
        publish(&e.dev, area, thread, epoch, 0, boundary, &mut w.ctx);
        win.compact_spill(&mut w.ctx)
    } else {
        let mark = win.spill_tail();
        publish(&e.dev, area, thread, epoch, mark, boundary, &mut w.ctx);
        win.truncate_spill(&mut w.ctx)
    };
    if freed > 0 {
        w.ckpt.spill_bytes_truncated += freed;
        w.ckpt.spill_truncations += 1;
    }
    w.ckpt_epoch = epoch;
    w.ckpt.published += 1;
    w.obs.phase_add(Phase::Checkpoint, w.ctx.clock - t0);
    w.ctx.attr_phase(ap);
}

#[cfg(feature = "persist-check")]
fn skip_bank_flush() -> bool {
    inject::skip_bank_flush()
}

#[cfg(not(feature = "persist-check"))]
fn skip_bank_flush() -> bool {
    false
}

#[cfg(feature = "persist-check")]
fn skip_pre_swing_fence() -> bool {
    inject::skip_pre_swing_fence()
}

#[cfg(not(feature = "persist-check"))]
fn skip_pre_swing_fence() -> bool {
    false
}

/// Fault-injection toggles for the persistency-checker negative tests:
/// each deliberately elides one ordering step of [`publish`] so the
/// corresponding falcon-check rule (R1/R2 for the flushes, R3 for the
/// pre-swing fence) must fire. Thread-local; test-only by construction
/// (the `persist-check` feature).
#[cfg(feature = "persist-check")]
pub mod inject {
    use std::cell::Cell;

    thread_local! {
        static SKIP_BANK_FLUSH: Cell<bool> = const { Cell::new(false) };
        static SKIP_PRE_SWING_FENCE: Cell<bool> = const { Cell::new(false) };
    }

    /// Skip both record-line flushes (the bank flush and the
    /// post-swing re-flush): under ADR the publish never becomes
    /// durable — R1 (commit durability) and R2 (pending hints) fire.
    pub fn set_skip_bank_flush(v: bool) {
        SKIP_BANK_FLUSH.with(|c| c.set(v));
    }

    pub(crate) fn skip_bank_flush() -> bool {
        SKIP_BANK_FLUSH.with(std::cell::Cell::get)
    }

    /// Skip only the fence between the bank flush and the swing store:
    /// the swing can reach media before the bank — R3 (fence ordering)
    /// fires.
    pub fn set_skip_pre_swing_fence(v: bool) {
        SKIP_PRE_SWING_FENCE.with(|c| c.set(v));
    }

    pub(crate) fn skip_pre_swing_fence() -> bool {
        SKIP_PRE_SWING_FENCE.with(std::cell::Cell::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::SimConfig;

    fn dev() -> PmemDevice {
        PmemDevice::new(SimConfig::small().with_capacity(16 << 20)).unwrap()
    }

    #[test]
    fn publish_then_read_roundtrip() {
        let d = dev();
        let mut ctx = MemCtx::new(0);
        let area = PAddr(1 << 20);
        assert_eq!(read_record(&d, area, 3, &mut ctx), CkptRead::None);
        publish(&d, area, 3, 1, 4096, true, &mut ctx);
        assert_eq!(
            read_record(&d, area, 3, &mut ctx),
            CkptRead::Valid {
                epoch: 1,
                mark: 4096
            }
        );
        // The next epoch lands in the other bank; the swing flips over.
        publish(&d, area, 3, 2, 9000, true, &mut ctx);
        assert_eq!(
            read_record(&d, area, 3, &mut ctx),
            CkptRead::Valid {
                epoch: 2,
                mark: 9000
            }
        );
        // Thread records are independent.
        assert_eq!(read_record(&d, area, 4, &mut ctx), CkptRead::None);
    }

    #[test]
    fn crash_between_bank_and_swing_keeps_old_record() {
        let d = dev();
        let mut ctx = MemCtx::new(0);
        let area = PAddr(1 << 20);
        publish(&d, area, 0, 1, 100, true, &mut ctx);
        // Hand-write the next bank but never swing (the crash window).
        let rec = record_addr(area, 0);
        let bank = rec.add(bank_of(2));
        d.store_u64(bank, 2, &mut ctx);
        d.store_u64(bank.add(8), 777, &mut ctx);
        d.store_u64(bank.add(16), rec_crc(0, 2, 777), &mut ctx);
        d.crash();
        assert_eq!(
            read_record(&d, area, 0, &mut ctx),
            CkptRead::Valid {
                epoch: 1,
                mark: 100
            },
            "pre-swing crash reads the previous checkpoint"
        );
    }

    #[test]
    fn bitrot_in_active_bank_reads_corrupt() {
        let d = dev();
        let mut ctx = MemCtx::new(0);
        let area = PAddr(1 << 20);
        publish(&d, area, 0, 1, 100, true, &mut ctx);
        let bank = record_addr(area, 0).add(bank_of(1));
        let m = d.load_u64(bank.add(8), &mut ctx);
        d.store_u64(bank.add(8), m ^ (1 << 17), &mut ctx);
        assert_eq!(read_record(&d, area, 0, &mut ctx), CkptRead::Corrupt);
        // A flipped swing word that selects a mismatched bank is also
        // caught (epoch comparison, before the CRC even runs).
        d.store_u64(bank.add(8), m, &mut ctx);
        d.store_u64(record_addr(area, 0), 5, &mut ctx);
        assert_eq!(read_record(&d, area, 0, &mut ctx), CkptRead::Corrupt);
    }
}
