//! Engine error types.

use falcon_index::IndexError;
use falcon_storage::StorageError;

/// Why a transaction could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A concurrency-control conflict (lock busy, timestamp order
    /// violated, validation failed). The transaction was aborted and can
    /// be retried.
    Conflict,
    /// The key does not exist (or is not visible in this snapshot).
    NotFound,
    /// An insert collided with an existing key.
    Duplicate,
    /// The operation is not allowed in a read-only transaction.
    ReadOnly,
    /// The redo log for this transaction exceeded the window *and* the
    /// overflow region could not grow.
    LogOverflow,
    /// A storage-layer failure.
    Storage(StorageError),
    /// An index-layer failure.
    Index(IndexError),
}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

impl From<IndexError> for TxnError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::Duplicate => TxnError::Duplicate,
            other => TxnError::Index(other),
        }
    }
}

impl core::fmt::Display for TxnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxnError::Conflict => write!(f, "concurrency conflict; retry"),
            TxnError::NotFound => write!(f, "key not found"),
            TxnError::Duplicate => write!(f, "duplicate key"),
            TxnError::ReadOnly => write!(f, "write in read-only transaction"),
            TxnError::LogOverflow => write!(f, "transaction redo log overflow"),
            TxnError::Storage(e) => write!(f, "storage: {e}"),
            TxnError::Index(e) => write!(f, "index: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Errors from engine construction / recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Index-layer failure.
    Index(IndexError),
    /// Invalid engine configuration.
    Config(String),
    /// Durable state is damaged beyond what replay can salvage: a
    /// malformed catalog, window header, or engine root. Recovery
    /// surfaces this instead of panicking or dereferencing wild
    /// addresses.
    Corrupt(String),
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> Self {
        EngineError::Index(e)
    }
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Index(e) => write!(f, "index: {e}"),
            EngineError::Config(s) => write!(f, "config: {s}"),
            EngineError::Corrupt(s) => write!(f, "corrupt durable state: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: TxnError = IndexError::Duplicate.into();
        assert_eq!(e, TxnError::Duplicate);
        let e: TxnError = IndexError::OutOfSpace.into();
        assert_eq!(e, TxnError::Index(IndexError::OutOfSpace));
        let e: TxnError = StorageError::OutOfSpace.into();
        assert!(matches!(e, TxnError::Storage(_)));
    }

    #[test]
    fn display() {
        assert!(TxnError::Conflict.to_string().contains("retry"));
        assert!(EngineError::Config("bad".into())
            .to_string()
            .contains("bad"));
    }
}
