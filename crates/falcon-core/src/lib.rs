#![warn(missing_docs)]
// The engine holds no raw pointers: the Met-Cache hands out Arc'd
// atomic cells, everything else is safe Rust. Keep it that way.
#![forbid(unsafe_code)]

//! The Falcon OLTP engine (SOSP '23 reproduction).
//!
//! This crate implements the paper's primary contribution — the Falcon
//! engine with its **small log window** (D1) and **selective data
//! flush** (D2) designs — together with every engine it is evaluated
//! against: the pure in-place baseline (Inp) with a conventional NVM
//! log, the pure out-of-place engine (Outp), the re-implemented Zen
//! storage engine (ZenS, with DRAM index + DRAM tuple cache +
//! Met-Cache), and the flush/window/hot-tracking ablations of Figure 10.
//!
//! All engines share the same tuple-heap substrate ([`falcon_storage`])
//! and run on the simulated eADR/NVM device ([`pmem_sim`]); an engine
//! variant is a point in [`config::EngineConfig`] space.
//!
//! # Example
//!
//! ```
//! use falcon_core::{Engine, EngineConfig};
//! use falcon_core::table::{IndexKind, TableDef};
//! use falcon_storage::{ColType, Schema};
//! use pmem_sim::{PmemDevice, SimConfig};
//!
//! fn key(_schema: &Schema, row: &[u8]) -> u64 {
//!     u64::from_le_bytes(row[0..8].try_into().unwrap())
//! }
//!
//! let dev = PmemDevice::new(SimConfig::small().with_capacity(64 << 20)).unwrap();
//! let def = TableDef {
//!     schema: Schema::new("kv", &[("k", ColType::U64), ("v", ColType::U64)]),
//!     index_kind: IndexKind::Hash,
//!     capacity_hint: 1024,
//!     primary_key: key,
//!     secondary: None,
//! };
//! let engine = Engine::create(dev, EngineConfig::falcon().with_threads(1), &[def]).unwrap();
//! let mut w = engine.worker(0).unwrap();
//!
//! let mut row = [0u8; 16];
//! row[0..8].copy_from_slice(&1u64.to_le_bytes());
//! row[8..16].copy_from_slice(&10u64.to_le_bytes());
//!
//! let mut txn = engine.begin(&mut w, false);
//! txn.insert(0, &row).unwrap();
//! txn.commit().unwrap();
//!
//! let mut txn = engine.begin(&mut w, false);
//! assert_eq!(txn.read(0, 1).unwrap(), row);
//! txn.commit().unwrap();
//! ```

pub mod checkpoint;
pub mod config;
pub mod crc;
pub mod engine;
pub mod error;
pub mod hot;
pub mod logwindow;
pub mod meta;
pub mod obs;
pub mod recovery;
pub mod table;
pub mod tid;
pub mod tuplecache;
pub mod txn;
pub mod versions;

pub use config::{CcAlgo, EngineConfig, FlushPolicy, IndexLocation, LogPolicy, UpdateStrategy};
pub use engine::{device_capacity_for, Engine, Worker};
pub use error::{EngineError, TxnError};
pub use recovery::{recover, RecoveryReport};
pub use table::{IndexKind, TableDef};
pub use txn::Txn;
