//! Race-checked smoke workload: a seeded multi-thread run on real
//! `std::thread`s against a real engine, recorded in race mode and
//! analyzed.
//!
//! The explorer ([`crate::sched`]) proves small protocols over *all*
//! bounded interleavings; the smoke run complements it with the real
//! engine end-to-end — real worker threads, the real commit path, the
//! real Met-Cache — under whatever interleavings the OS produces. It is
//! a sampling check, not a proof, which is exactly the division of
//! labor loom-style tools use.

use falcon_core::table::{IndexKind, TableDef};
use falcon_core::{Engine, EngineConfig, TxnError};
use falcon_storage::{ColType, Schema};
use pmem_sim::{PersistDomain, PmemDevice, SimConfig};

use crate::hb::{analyze, RaceReport};

/// Parameters for one smoke run.
#[derive(Debug, Clone, Copy)]
pub struct SmokeConfig {
    /// Worker threads (2–4 per the harness contract).
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// RNG seed (each thread derives its stream as `seed + tid + 1`).
    pub seed: u64,
    /// Persistence domain of the simulated device.
    pub domain: PersistDomain,
}

impl Default for SmokeConfig {
    fn default() -> SmokeConfig {
        SmokeConfig {
            threads: 3,
            txns_per_thread: 40,
            seed: 0x000F_A1C0,
            domain: PersistDomain::Eadr,
        }
    }
}

/// Outcome of one smoke run.
#[derive(Debug)]
pub struct SmokeResult {
    /// The analyzer's report over the recorded trace.
    pub report: RaceReport,
    /// Transactions committed across all threads.
    pub committed: u64,
    /// Transactions that hit a conflict/abort and were retried.
    pub retries: u64,
}

const TABLE: u32 = 0;
const VAL_OFF: u32 = 8;
const KEYS: u64 = 64;
/// A small hot range every thread hammers, to force real CC contention.
const HOT: u64 = 4;

fn key_fn(_s: &Schema, row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().unwrap())
}

fn kv_def() -> TableDef {
    TableDef {
        schema: Schema::new("kv", &[("k", ColType::U64), ("v", ColType::Bytes(56))]),
        index_kind: IndexKind::Hash,
        capacity_hint: 10_000,
        primary_key: key_fn,
        secondary: None,
    }
}

fn row(k: u64, tag: u8) -> Vec<u8> {
    let mut r = vec![tag; 64];
    r[0..8].copy_from_slice(&k.to_le_bytes());
    r
}

/// Tiny deterministic RNG (xorshift*), seeded per thread.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Run the smoke workload under `engine_cfg` and analyze the trace.
///
/// # Panics
/// Panics on engine setup failure or a non-retryable transaction error
/// (both indicate a broken build, not a race).
#[must_use]
pub fn run(engine_cfg: &EngineConfig, cfg: &SmokeConfig) -> SmokeResult {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(256 << 20)
            .with_domain(cfg.domain),
    )
    .expect("sim config");
    let engine = Engine::create(
        dev.clone(),
        engine_cfg.clone().with_threads(cfg.threads),
        &[kv_def()],
    )
    .expect("engine");

    // Load the key space before recording: loader-era accesses are
    // single-threaded and only dilute the interesting trace.
    {
        let mut w = engine.worker(0).expect("worker");
        for k in 0..KEYS {
            let mut t = engine.begin(&mut w, false);
            t.insert(TABLE, &row(k, 1)).expect("load insert");
            t.commit().expect("load commit");
        }
    }
    dev.quiesce();
    dev.trace_start_race();

    let committed = std::sync::atomic::AtomicU64::new(0);
    let retries = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for tid in 0..cfg.threads {
            let engine = &engine;
            let committed = &committed;
            let retries = &retries;
            s.spawn(move || {
                let mut rng = cfg.seed + tid as u64 + 1;
                let mut w = engine.worker(tid).expect("worker");
                let span = KEYS / cfg.threads as u64;
                let lo = span * tid as u64;
                let mut done = 0;
                while done < cfg.txns_per_thread {
                    let r = next(&mut rng);
                    // 1-in-4 transactions touch the shared hot range;
                    // the rest stay in the thread's partition.
                    let k = if r.is_multiple_of(4) {
                        r % HOT
                    } else {
                        lo + r % span.max(1)
                    };
                    let attempt = (|| -> Result<(), TxnError> {
                        let mut t = engine.begin(&mut w, false);
                        t.update(TABLE, k, &[(VAL_OFF, &[(r % 251) as u8; 8])])?;
                        t.commit()
                    })();
                    match attempt {
                        Ok(()) => {
                            committed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            done += 1;
                        }
                        Err(TxnError::Conflict) => {
                            retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("smoke txn failed: {e:?}"),
                    }
                }
            });
        }
    });

    dev.quiesce();
    let trace = dev.trace_take();
    SmokeResult {
        report: analyze(&trace),
        committed: committed.load(std::sync::atomic::Ordering::Relaxed),
        retries: retries.load(std::sync::atomic::Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon_eadr_smoke_is_race_free() {
        let r = run(&EngineConfig::falcon(), &SmokeConfig::default());
        assert!(r.committed > 0);
        r.report.assert_clean();
    }

    #[test]
    fn inp_adr_smoke_is_race_free() {
        let cfg = SmokeConfig {
            domain: PersistDomain::Adr,
            threads: 2,
            txns_per_thread: 25,
            ..SmokeConfig::default()
        };
        let r = run(&EngineConfig::inp(), &cfg);
        assert!(r.committed > 0);
        r.report.assert_clean();
    }
}
