//! falcon-race: the concurrency-correctness plane for the Falcon
//! reproduction.
//!
//! Three layers, bottom-up:
//!
//! * [`vc`]/[`hb`] — a FastTrack-style vector-clock happens-before
//!   analyzer over race-mode device traces ([`pmem_sim::trace`]),
//!   reporting data races, lock-discipline violations, and the
//!   cross-thread persist-order rule **R5** (a commit record visible to
//!   another thread before the writer's log lines are durable).
//! * [`sched`]/[`kernels`] — a bounded deterministic interleaving
//!   explorer (preemption-bounded DFS, no external deps) driving small
//!   2–3-thread micro-kernels modelled on the engine's lock-free
//!   protocols (log-window slot claim, Met-Cache counter, index root
//!   swing), plus injected-race fixtures that the analyzer must flag.
//! * [`smoke`] — a seeded multi-thread workload on real `std::thread`s
//!   against a real engine, recorded in race mode and analyzed.
//!
//! See DESIGN.md §12 for the trace schema, the vector-clock model, R5
//! semantics, and the explorer's bounds.

pub mod hb;
pub mod kernels;
pub mod sched;
pub mod smoke;
pub mod vc;

pub use hb::{analyze, Finding, FindingKind, RaceReport};
pub use sched::{explore, run_schedule, ExploreResult, Program};
