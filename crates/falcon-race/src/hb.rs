//! FastTrack-style vector-clock happens-before analysis over a
//! race-mode device trace, plus the cross-thread persist-order rule R5
//! and lock-discipline checks.
//!
//! # Model
//!
//! The input is a [`Trace`] recorded in [`TraceMode::Race`]: a single
//! globally ordered stream in which device-level *atomic* operations
//! (and engine-level ones instrumented through
//! `PmemDevice::trace_atomic`) are serialized with their emission, so
//! the stamp order of two atomic events at one address equals their
//! memory-effect order — the stream is a linearization. That property
//! is what lets a *dynamic* analyzer resolve reads-from without
//! recording values: an acquire load reads the value of the latest
//! release write at that address in stream order.
//!
//! Each thread carries a [`VClock`]. Synchronization edges:
//!
//! * release store / RMW at address `a` publishes the writer's clock
//!   into `a`'s sync clock (a plain `Relaxed` store *clears* it — a
//!   relaxed publish gives readers nothing, which is exactly how a
//!   deliberately weakened ordering gets flagged);
//! * acquire load / RMW at `a` joins `a`'s sync clock;
//! * lock release publishes into the lock's clock, lock acquire joins
//!   it (shared/read releases publish only to later *exclusive*
//!   acquires — readers do not synchronize with each other).
//!
//! A data race is two accesses to the same 8-byte word, at least one a
//! write, at least one *plain* (non-atomic), on different threads, with
//! no happens-before edge between them. Atomic-atomic pairs never race;
//! plain-atomic pairs do (mixed-atomicity access is a race in the C++
//! model and a real bug on weak hardware).
//!
//! # Rule R5 — cross-thread persist order (ADR only)
//!
//! R1 already checks that a *committing thread's* log is durable at its
//! commit point. R5 is the concurrent version of the same contract: no
//! other thread may *observe* a commit record while the log lines it
//! covers are still undurable on the writing thread. The hazard is a
//! dependent transaction building on a commit that a crash would
//! un-happen ("Durable Queues"' durable-linearizability violation).
//! Concretely: when a `CommitRecord` hint is followed by the writer's
//! store to the commit word, the analyzer snapshots which of the
//! transaction's log lines (from `LogRange`) are not yet persisted. Any
//! read of the commit word by another thread while that set is
//! non-empty is a violation. Under eADR every store is in the
//! persistence domain and R5 is vacuous.

use std::collections::{HashMap, HashSet};
use std::fmt;

use pmem_sim::trace::{AtomicKind, Event, MemOrder, Trace, TraceMode};
use pmem_sim::{PersistDomain, CACHE_LINE};

use crate::vc::VClock;

/// Cap on recorded findings; beyond it only the counter grows (one bad
/// schedule can otherwise flood the report with copies of one race).
const MAX_FINDINGS: usize = 64;

/// What kind of concurrency violation a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Two unordered accesses, at least one write, at least one plain.
    DataRace,
    /// Rule R5: commit record observed by another thread before the
    /// writer's log lines were durable.
    PersistPublish,
    /// Lock protocol violation: released while not held (wrong thread
    /// or wrong mode), or acquired while exclusively held.
    LockDiscipline,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::DataRace => write!(f, "data-race"),
            FindingKind::PersistPublish => write!(f, "persist-publish(R5)"),
            FindingKind::LockDiscipline => write!(f, "lock-discipline"),
        }
    }
}

/// One of the two sides of a finding: an event index in the trace plus
/// its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Thread that performed the access.
    pub thread: usize,
    /// Index into `Trace::events`.
    pub seq: usize,
}

/// A confirmed concurrency violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Violation class.
    pub kind: FindingKind,
    /// The 8-byte word (or lock id) involved.
    pub addr: u64,
    /// The earlier conflicting access, when there is one.
    pub prior: Option<Access>,
    /// The access that completed the violation.
    pub access: Access,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// The result of analyzing one trace.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Distinct findings (deduplicated per word/thread-pair/kind,
    /// capped at an internal limit).
    pub findings: Vec<Finding>,
    /// Total violations seen including duplicates of recorded findings.
    pub total: u64,
    /// Events analyzed.
    pub events: usize,
    /// Distinct threads observed in the trace.
    pub threads: usize,
}

impl RaceReport {
    /// Whether the trace is free of races, R5 violations and lock
    /// discipline errors.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.total == 0
    }

    /// Number of findings of `kind`.
    #[must_use]
    pub fn count_of(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Panic with the full findings list unless clean (test helper).
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "{self}");
    }

    /// Condense into the falcon-obs run-report summary (the optional
    /// `race` section of the schema-v3 JSON document).
    #[must_use]
    pub fn summary(&self) -> falcon_obs::report::RaceCheckSummary {
        falcon_obs::report::RaceCheckSummary {
            threads: self.threads,
            events: self.events as u64,
            data_races: self.count_of(FindingKind::DataRace) as u64,
            persist_publishes: self.count_of(FindingKind::PersistPublish) as u64,
            lock_discipline: self.count_of(FindingKind::LockDiscipline) as u64,
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race report: {} finding(s) ({} total) over {} events, {} threads",
            self.findings.len(),
            self.total,
            self.events,
            self.threads
        )?;
        for v in &self.findings {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Per-word access history (word = aligned 8 bytes).
#[derive(Default)]
struct WordState {
    /// thread → (clock component at access, event index) for the last
    /// access of each class.
    plain_writes: HashMap<usize, (u64, usize)>,
    plain_reads: HashMap<usize, (u64, usize)>,
    atomic_writes: HashMap<usize, (u64, usize)>,
    atomic_reads: HashMap<usize, (u64, usize)>,
    /// Clock published by the latest release write (stream order);
    /// cleared by a relaxed store.
    sync: VClock,
}

/// Per-lock state.
#[derive(Default)]
struct LockState {
    /// Published to every subsequent acquire (writer releases, plus
    /// reader releases once a writer has synchronized with them).
    vc: VClock,
    /// Published by read releases; joined (and folded into `vc`) by the
    /// next exclusive acquire — readers do not synchronize with each
    /// other.
    readers_vc: VClock,
    /// Current holders (thread, exclusive).
    holders: Vec<(usize, bool)>,
}

/// Cache-line durability (mirror of falcon-check's per-line machine).
#[derive(Clone, Copy, PartialEq, Eq)]
enum LineState {
    Dirty,
    Flushing(usize),
    Persisted,
}

/// An armed commit publication: the commit word is visible with these
/// log lines still undurable.
struct Publish {
    writer: usize,
    commit_seq: usize,
    lines: HashSet<u64>,
}

struct Analyzer<'t> {
    trace: &'t Trace,
    adr: bool,
    clocks: HashMap<usize, VClock>,
    words: HashMap<u64, WordState>,
    locks: HashMap<u64, LockState>,
    // R5 machinery.
    line_state: HashMap<u64, LineState>,
    flushing: HashMap<usize, HashSet<u64>>,
    txn_lines: HashMap<usize, HashSet<u64>>,
    /// CommitRecord hint seen; armed until the writer stores the word.
    pending_commit: HashMap<usize, (u64, usize)>,
    publishes: HashMap<u64, Publish>,
    report: RaceReport,
    dedup: HashSet<(FindingKind, u64, usize, usize)>,
}

/// Analyze a race-mode trace. Persist-mode traces (which carry no
/// loads, atomic kinds or lock events) vacuously produce an empty
/// report — callers should record with `trace_start_race`.
#[must_use]
pub fn analyze(trace: &Trace) -> RaceReport {
    debug_assert_eq!(
        trace.mode,
        TraceMode::Race,
        "analyze() expects a race-mode trace"
    );
    let mut a = Analyzer {
        trace,
        adr: trace.domain == PersistDomain::Adr,
        clocks: HashMap::new(),
        words: HashMap::new(),
        locks: HashMap::new(),
        line_state: HashMap::new(),
        flushing: HashMap::new(),
        txn_lines: HashMap::new(),
        pending_commit: HashMap::new(),
        publishes: HashMap::new(),
        report: RaceReport::default(),
        dedup: HashSet::new(),
    };
    a.run();
    a.report
}

/// Aligned 8-byte words covered by `[addr, addr+len)`.
fn words(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / 8;
    let last = (addr + len.max(1) - 1) / 8;
    (first..=last).map(|w| w * 8)
}

/// Cache lines covered by `[addr, addr+len)`.
fn lines(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / CACHE_LINE;
    let last = (addr + len.max(1) - 1) / CACHE_LINE;
    first..=last
}

impl Analyzer<'_> {
    fn run(&mut self) {
        self.report.events = self.trace.events.len();
        for seq in 0..self.trace.events.len() {
            let ev = self.trace.events[seq];
            self.clocks.entry(ev.thread()).or_insert_with(|| {
                let mut vc = VClock::new();
                vc.tick(ev.thread());
                vc
            });
            match ev {
                Event::Store { thread, addr, len } => {
                    self.plain_access(seq, thread, addr, len, true);
                    if self.adr {
                        self.on_persist_store(thread, addr, len, seq);
                    }
                }
                Event::Load { thread, addr, len } => {
                    self.plain_access(seq, thread, addr, len, false);
                    if self.adr {
                        self.on_persist_read(thread, addr, len, seq);
                    }
                }
                Event::AtomicOp {
                    thread,
                    addr,
                    kind,
                    order,
                } => {
                    self.atomic_access(seq, thread, addr, kind, order);
                    if self.adr {
                        if kind == AtomicKind::Load {
                            self.on_persist_read(thread, addr, 8, seq);
                        } else {
                            self.on_persist_store(thread, addr, 8, seq);
                        }
                    }
                }
                Event::LockAcquire { thread, lock, excl } => {
                    self.lock_acquire(seq, thread, lock, excl);
                }
                Event::LockRelease { thread, lock, excl } => {
                    self.lock_release(seq, thread, lock, excl);
                }
                Event::Clwb {
                    thread,
                    line,
                    dirty: true,
                } if self.adr => {
                    self.line_state.insert(line, LineState::Flushing(thread));
                    self.flushing.entry(thread).or_default().insert(line);
                }
                Event::Sfence { thread } if self.adr => {
                    let flushed: Vec<u64> =
                        self.flushing.entry(thread).or_default().drain().collect();
                    for line in flushed {
                        if self.line_state.get(&line) == Some(&LineState::Flushing(thread)) {
                            self.persist_line(line);
                        }
                    }
                }
                Event::Evict { line, .. } if self.adr => self.persist_line(line),
                Event::DrainXpb => {
                    let all: Vec<u64> = self.line_state.keys().copied().collect();
                    for line in all {
                        self.persist_line(line);
                    }
                }
                Event::CrashMark => self.on_crash(),
                Event::TxnBegin { thread, .. } => {
                    self.txn_lines.insert(thread, HashSet::new());
                }
                Event::LogRange { thread, addr, len } => {
                    self.txn_lines
                        .entry(thread)
                        .or_default()
                        .extend(lines(addr, len));
                }
                Event::CommitRecord { thread, addr } => {
                    // Armed: the *store* of the commit word (the very
                    // next write there by this thread) makes it visible
                    // and snapshots the undurable log lines.
                    self.pending_commit.insert(thread, (addr / 8 * 8, seq));
                }
                _ => {}
            }
            // Each event advances its thread's clock component.
            if let Some(vc) = self.clocks.get_mut(&ev.thread()) {
                vc.tick(ev.thread());
            }
        }
        self.report.threads = self.clocks.len();
    }

    fn finding(
        &mut self,
        kind: FindingKind,
        addr: u64,
        prior: Option<Access>,
        access: Access,
        detail: String,
    ) {
        self.report.total += 1;
        let a = prior.map_or(access.thread, |p| p.thread);
        let (lo, hi) = if a <= access.thread {
            (a, access.thread)
        } else {
            (access.thread, a)
        };
        if !self.dedup.insert((kind, addr, lo, hi)) || self.report.findings.len() >= MAX_FINDINGS {
            return;
        }
        self.report.findings.push(Finding {
            kind,
            addr,
            prior,
            access,
            detail,
        });
    }

    /// The issuing thread's current clock component (its own entry).
    fn own_clock(&self, t: usize) -> u64 {
        self.clocks.get(&t).map_or(0, |vc| vc.get(t))
    }

    fn plain_access(&mut self, seq: usize, t: usize, addr: u64, len: u64, is_write: bool) {
        let c = self.own_clock(t);
        for w in words(addr, len) {
            let mut hits: Vec<(FindingKind, Access, String)> = Vec::new();
            {
                let vc = self.clocks.get(&t).expect("clock exists");
                let ws = self.words.entry(w).or_default();
                let mut check = |map: &HashMap<usize, (u64, usize)>, what: &str| {
                    for (&u, &(cu, su)) in map {
                        if u != t && !vc.covers(u, cu) {
                            hits.push((
                                FindingKind::DataRace,
                                Access { thread: u, seq: su },
                                format!(
                                    "{} word {w:#x}: thread {t} (event {seq}) unordered with \
                                     {what} by thread {u} (event {su})",
                                    if is_write { "write of" } else { "read of" },
                                ),
                            ));
                        }
                    }
                };
                // Plain writes conflict with everything; plain reads
                // conflict with any write. Atomic-atomic pairs are
                // handled in atomic_access (they never race).
                check(&ws.plain_writes, "plain write");
                if is_write {
                    check(&ws.plain_reads, "plain read");
                    check(&ws.atomic_writes, "atomic write");
                    check(&ws.atomic_reads, "atomic read");
                } else {
                    check(&ws.atomic_writes, "atomic write");
                }
                if is_write {
                    ws.plain_writes.insert(t, (c, seq));
                } else {
                    ws.plain_reads.insert(t, (c, seq));
                }
            }
            for (kind, prior, detail) in hits {
                self.finding(kind, w, Some(prior), Access { thread: t, seq }, detail);
            }
        }
    }

    fn atomic_access(
        &mut self,
        seq: usize,
        t: usize,
        addr: u64,
        kind: AtomicKind,
        order: MemOrder,
    ) {
        let w = addr / 8 * 8;
        let c = self.own_clock(t);
        let is_write = kind != AtomicKind::Load;
        let is_read = kind != AtomicKind::Store;
        let mut hits: Vec<(Access, String)> = Vec::new();
        {
            let vc = self.clocks.get_mut(&t).expect("clock exists");
            let ws = self.words.entry(w).or_default();
            {
                let mut check = |map: &HashMap<usize, (u64, usize)>, what: &str| {
                    for (&u, &(cu, su)) in map {
                        if u != t && !vc.covers(u, cu) {
                            hits.push((
                                Access { thread: u, seq: su },
                                format!(
                                    "atomic {kind:?} of word {w:#x}: thread {t} (event {seq}) \
                                     unordered with {what} by thread {u} (event {su}) — \
                                     mixed atomic/non-atomic access",
                                ),
                            ));
                        }
                    }
                };
                // Mixed-atomicity conflicts: any atomic access vs a
                // plain write; an atomic write additionally vs plain
                // reads.
                check(&ws.plain_writes, "plain write");
                if is_write {
                    check(&ws.plain_reads, "plain read");
                }
            }
            // Synchronization edges. Reads-from is resolved by stream
            // order (atomics are linearized): an acquire joins whatever
            // the latest release write published here.
            if is_read && order.is_acquire() {
                vc.join(&ws.sync);
            }
            if is_write {
                if order.is_release() {
                    if kind == AtomicKind::Store {
                        // A release store starts a fresh release
                        // sequence: readers of *this* value synchronize
                        // with this writer (and, transitively, whatever
                        // its clock already covered).
                        ws.sync = vc.clone();
                    } else {
                        // A release RMW continues the chain and adds its
                        // own clock.
                        ws.sync.join(vc);
                    }
                } else if kind == AtomicKind::Store {
                    // A relaxed store publishes nothing: readers of this
                    // value get no edge. (A relaxed RMW leaves the chain
                    // intact per the release-sequence rules.)
                    ws.sync.clear();
                }
            }
            if is_write {
                ws.atomic_writes.insert(t, (c, seq));
            }
            if is_read {
                ws.atomic_reads.insert(t, (c, seq));
            }
        }
        for (prior, detail) in hits {
            self.finding(
                FindingKind::DataRace,
                w,
                Some(prior),
                Access { thread: t, seq },
                detail,
            );
        }
    }

    fn lock_acquire(&mut self, seq: usize, t: usize, lock: u64, excl: bool) {
        let mut discipline: Option<String> = None;
        {
            let vc = self.clocks.get_mut(&t).expect("clock exists");
            let ls = self.locks.entry(lock).or_default();
            if excl {
                if let Some(&(holder, h_excl)) = ls.holders.first() {
                    discipline = Some(format!(
                        "thread {t} acquired lock {lock:#x} exclusively while thread {holder} \
                         holds it ({}) — instrumentation or lock protocol bug",
                        if h_excl { "exclusive" } else { "shared" }
                    ));
                }
                vc.join(&ls.vc);
                vc.join(&ls.readers_vc);
                // The writer has now synchronized with all prior
                // readers; later acquires inherit that through vc.
                let readers = std::mem::take(&mut ls.readers_vc);
                ls.vc.join(&readers);
            } else {
                if let Some(&(holder, _)) = ls.holders.iter().find(|&&(_, e)| e) {
                    discipline = Some(format!(
                        "thread {t} acquired lock {lock:#x} shared while thread {holder} holds \
                         it exclusively"
                    ));
                }
                vc.join(&ls.vc);
            }
            ls.holders.push((t, excl));
        }
        if let Some(detail) = discipline {
            self.finding(
                FindingKind::LockDiscipline,
                lock,
                None,
                Access { thread: t, seq },
                detail,
            );
        }
    }

    fn lock_release(&mut self, seq: usize, t: usize, lock: u64, excl: bool) {
        let mut discipline: Option<String> = None;
        {
            let vc = self.clocks.get(&t).expect("clock exists");
            let ls = self.locks.entry(lock).or_default();
            match ls.holders.iter().position(|&(h, e)| h == t && e == excl) {
                Some(i) => {
                    ls.holders.swap_remove(i);
                    if excl {
                        ls.vc.join(vc);
                    } else {
                        ls.readers_vc.join(vc);
                    }
                }
                None => {
                    discipline = Some(format!(
                        "thread {t} released lock {lock:#x} ({}) which it does not hold — \
                         released on the wrong thread or in the wrong mode",
                        if excl { "exclusive" } else { "shared" }
                    ));
                }
            }
        }
        if let Some(detail) = discipline {
            self.finding(
                FindingKind::LockDiscipline,
                lock,
                None,
                Access { thread: t, seq },
                detail,
            );
        }
    }

    // ---------------- R5: cross-thread persist order ----------------

    fn persist_line(&mut self, line: u64) {
        self.line_state.insert(line, LineState::Persisted);
        for p in self.publishes.values_mut() {
            p.lines.remove(&line);
        }
        self.publishes.retain(|_, p| !p.lines.is_empty());
    }

    fn on_persist_store(&mut self, t: usize, addr: u64, len: u64, seq: usize) {
        for line in lines(addr, len) {
            self.line_state.insert(line, LineState::Dirty);
        }
        for w in words(addr, len) {
            if let Some(&(cw, _marker_seq)) =
                self.pending_commit.get(&t).filter(|&&(cw, _)| cw == w)
            {
                // The commit word is now visible: snapshot the
                // transaction's undurable log lines.
                self.pending_commit.remove(&t);
                let undurable: HashSet<u64> = self
                    .txn_lines
                    .get(&t)
                    .map(|ls| {
                        ls.iter()
                            .filter(|l| self.line_state.get(l) != Some(&LineState::Persisted))
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default();
                if undurable.is_empty() {
                    self.publishes.remove(&cw);
                } else {
                    self.publishes.insert(
                        cw,
                        Publish {
                            writer: t,
                            commit_seq: seq,
                            lines: undurable,
                        },
                    );
                }
            } else if self.publishes.contains_key(&w) {
                // Overwritten: the commit value is no longer what a
                // reader would see.
                self.publishes.remove(&w);
            }
        }
    }

    fn on_persist_read(&mut self, t: usize, addr: u64, len: u64, seq: usize) {
        let mut hits: Vec<(u64, Access, String)> = Vec::new();
        for w in words(addr, len) {
            if let Some(p) = self.publishes.get(&w) {
                if p.writer != t && !p.lines.is_empty() {
                    hits.push((
                        w,
                        Access {
                            thread: p.writer,
                            seq: p.commit_seq,
                        },
                        format!(
                            "R5: thread {t} (event {seq}) observed the commit record at \
                             {w:#x} published by thread {} (event {}) while {} of its log \
                             line(s) are not yet flushed+fenced — a crash now would \
                             un-commit a transaction another thread already acted on",
                            p.writer,
                            p.commit_seq,
                            p.lines.len()
                        ),
                    ));
                }
            }
        }
        for (w, prior, detail) in hits {
            self.finding(
                FindingKind::PersistPublish,
                w,
                Some(prior),
                Access { thread: t, seq },
                detail,
            );
        }
    }

    fn on_crash(&mut self) {
        // A crash ends the concurrent world: recovery runs
        // single-threaded against a fresh image, so cross-thread access
        // history and in-flight publications are moot.
        self.words.clear();
        self.locks.clear();
        self.line_state.clear();
        self.flushing.clear();
        self.txn_lines.clear();
        self.pending_commit.clear();
        self.publishes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race_trace(domain: PersistDomain, events: Vec<Event>) -> Trace {
        let mut t = Trace::synthetic(domain, events);
        t.mode = TraceMode::Race;
        t
    }

    fn store(thread: usize, addr: u64) -> Event {
        Event::Store {
            thread,
            addr,
            len: 8,
        }
    }

    fn load(thread: usize, addr: u64) -> Event {
        Event::Load {
            thread,
            addr,
            len: 8,
        }
    }

    fn atomic(thread: usize, addr: u64, kind: AtomicKind, order: MemOrder) -> Event {
        Event::AtomicOp {
            thread,
            addr,
            kind,
            order,
        }
    }

    #[test]
    fn unsynchronized_writes_race() {
        let t = race_trace(PersistDomain::Eadr, vec![store(0, 64), store(1, 64)]);
        let r = analyze(&t);
        assert_eq!(r.count_of(FindingKind::DataRace), 1, "{r}");
    }

    #[test]
    fn release_acquire_orders_payload() {
        // Thread 0 writes payload then release-publishes; thread 1
        // acquire-loads then reads payload. No race.
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                store(0, 64),
                atomic(0, 128, AtomicKind::Store, MemOrder::Release),
                atomic(1, 128, AtomicKind::Load, MemOrder::Acquire),
                load(1, 64),
            ],
        );
        analyze(&t).assert_clean();
    }

    #[test]
    fn relaxed_publish_is_flagged() {
        // Same shape but the publish is relaxed: the payload read races.
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                store(0, 64),
                atomic(0, 128, AtomicKind::Store, MemOrder::Relaxed),
                atomic(1, 128, AtomicKind::Load, MemOrder::Acquire),
                load(1, 64),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.count_of(FindingKind::DataRace), 1, "{r}");
    }

    #[test]
    fn rmw_chain_carries_release_sequence() {
        // Release store, then a SeqCst RMW by a third party, then an
        // acquire load: the acquire still synchronizes with the
        // original release (release sequence through the RMW).
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                store(0, 64),
                atomic(0, 128, AtomicKind::Store, MemOrder::Release),
                atomic(2, 128, AtomicKind::Rmw, MemOrder::SeqCst),
                atomic(1, 128, AtomicKind::Load, MemOrder::Acquire),
                load(1, 64),
            ],
        );
        analyze(&t).assert_clean();
    }

    #[test]
    fn lock_protects_plain_accesses() {
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                Event::LockAcquire {
                    thread: 0,
                    lock: 1,
                    excl: true,
                },
                store(0, 64),
                Event::LockRelease {
                    thread: 0,
                    lock: 1,
                    excl: true,
                },
                Event::LockAcquire {
                    thread: 1,
                    lock: 1,
                    excl: true,
                },
                store(1, 64),
                Event::LockRelease {
                    thread: 1,
                    lock: 1,
                    excl: true,
                },
            ],
        );
        analyze(&t).assert_clean();
    }

    #[test]
    fn readers_do_not_synchronize_each_other() {
        // Two read-critical-sections around conflicting plain writes:
        // the shared lock provides no edge between them.
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                Event::LockAcquire {
                    thread: 0,
                    lock: 1,
                    excl: false,
                },
                store(0, 64),
                Event::LockRelease {
                    thread: 0,
                    lock: 1,
                    excl: false,
                },
                Event::LockAcquire {
                    thread: 1,
                    lock: 1,
                    excl: false,
                },
                store(1, 64),
                Event::LockRelease {
                    thread: 1,
                    lock: 1,
                    excl: false,
                },
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.count_of(FindingKind::DataRace), 1, "{r}");
    }

    #[test]
    fn wrong_thread_release_is_flagged() {
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                Event::LockAcquire {
                    thread: 0,
                    lock: 9,
                    excl: true,
                },
                Event::LockRelease {
                    thread: 1,
                    lock: 9,
                    excl: true,
                },
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.count_of(FindingKind::LockDiscipline), 1, "{r}");
    }

    #[test]
    fn r5_publish_before_flush_fires_under_adr() {
        // Writer: log store (never flushed), commit record, commit-word
        // store; reader: loads the commit word. ADR → R5.
        let t = race_trace(
            PersistDomain::Adr,
            vec![
                Event::TxnBegin { thread: 0, tid: 7 },
                Event::LogRange {
                    thread: 0,
                    addr: 4096,
                    len: 64,
                },
                store(0, 4096),
                Event::CommitRecord {
                    thread: 0,
                    addr: 8192,
                },
                atomic(0, 8192, AtomicKind::Store, MemOrder::Release),
                atomic(1, 8192, AtomicKind::Load, MemOrder::Acquire),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.count_of(FindingKind::PersistPublish), 1, "{r}");
    }

    #[test]
    fn r5_quiet_when_log_flushed_first() {
        let t = race_trace(
            PersistDomain::Adr,
            vec![
                Event::TxnBegin { thread: 0, tid: 7 },
                Event::LogRange {
                    thread: 0,
                    addr: 4096,
                    len: 64,
                },
                store(0, 4096),
                Event::Clwb {
                    thread: 0,
                    line: 64,
                    dirty: true,
                },
                Event::Sfence { thread: 0 },
                Event::CommitRecord {
                    thread: 0,
                    addr: 8192,
                },
                atomic(0, 8192, AtomicKind::Store, MemOrder::Release),
                atomic(1, 8192, AtomicKind::Load, MemOrder::Acquire),
            ],
        );
        analyze(&t).assert_clean();
    }

    #[test]
    fn r5_vacuous_under_eadr() {
        let t = race_trace(
            PersistDomain::Eadr,
            vec![
                Event::TxnBegin { thread: 0, tid: 7 },
                Event::LogRange {
                    thread: 0,
                    addr: 4096,
                    len: 64,
                },
                store(0, 4096),
                Event::CommitRecord {
                    thread: 0,
                    addr: 8192,
                },
                atomic(0, 8192, AtomicKind::Store, MemOrder::Release),
                atomic(1, 8192, AtomicKind::Load, MemOrder::Acquire),
            ],
        );
        analyze(&t).assert_clean();
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let t = race_trace(
            PersistDomain::Eadr,
            vec![store(0, 64), load(0, 64), store(0, 64)],
        );
        analyze(&t).assert_clean();
    }
}
