//! Bounded deterministic interleaving explorer.
//!
//! The explorer drives a [`Program`] — a small multi-threaded kernel
//! whose threads advance in discrete, externally scheduled steps — and
//! enumerates interleavings by depth-first search with a **preemption
//! bound** (Musuvathi & Qadeer's context-bounding insight: almost all
//! real concurrency bugs manifest with very few preemptions, so
//! bounding them turns an exponential space into a small one while
//! keeping the bug-finding power).
//!
//! Execution is genuinely deterministic: there is only one OS thread.
//! "Threads" are logical lanes inside the program; a step runs one
//! lane's next action to completion. The program records a race-mode
//! device trace with per-lane thread ids, and every *complete* schedule
//! is handed to [`crate::hb::analyze`] plus the program's own
//! [`Program::check_outcome`] invariant.
//!
//! Schedules serialize as dotted lane ids (`"0.0.1.0"`), which is also
//! the `--repro` replay format: `KERNEL:SCHEDULE`.

use pmem_sim::trace::Trace;

use crate::hb::{analyze, RaceReport};

/// Hard cap on steps in one schedule; a kernel that exceeds it has a
/// lane that never reaches `done` and the explorer aborts loudly
/// rather than hanging.
const MAX_STEPS: usize = 512;

/// Cap on complete schedules explored per kernel (a backstop — the
/// preemption bound keeps real kernels far below it).
const MAX_SCHEDULES: usize = 100_000;

/// Failing schedules retained in full; beyond this only counted.
const MAX_FAILURES: usize = 8;

/// A deterministically schedulable multi-lane kernel.
///
/// Implementations are constructed fresh for every schedule (replay
/// from scratch), so `step` may assume it is never called after the
/// lane reported `done`.
pub trait Program {
    /// Number of logical lanes (2–3 for the engine kernels).
    fn threads(&self) -> usize;
    /// Whether lane `t` has run to completion.
    fn done(&self, t: usize) -> bool;
    /// Run lane `t`'s next step.
    fn step(&mut self, t: usize);
    /// Stop recording and hand over the race-mode trace. Called once,
    /// after every lane is done.
    fn trace(&mut self) -> Trace;
    /// Functional-correctness check on the final state (e.g. "the
    /// counter is 2"). Runs after `trace`.
    fn check_outcome(&self) -> Result<(), String> {
        Ok(())
    }
}

/// One failing schedule.
#[derive(Debug)]
pub struct Failure {
    /// Dotted schedule string, replayable via `--repro NAME:SCHEDULE`.
    pub schedule: String,
    /// The analyzer's report for this schedule.
    pub report: RaceReport,
    /// The program's own outcome check.
    pub outcome: Result<(), String>,
}

/// Aggregate result of exploring one kernel.
#[derive(Debug, Default)]
pub struct ExploreResult {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Schedules on which the analyzer or the outcome check failed.
    pub failures: Vec<Failure>,
    /// Failing schedules beyond the retention cap (counted only).
    pub failures_dropped: usize,
    /// True if the schedule backstop was hit before the space was
    /// exhausted (the sweep is then a sample, not a proof).
    pub truncated: bool,
}

impl ExploreResult {
    /// No failing schedule was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.failures_dropped == 0
    }
}

fn fmt_schedule(s: &[usize]) -> String {
    s.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

/// Parse a dotted schedule string (`"0.0.1.0"`).
///
/// # Errors
/// If any component is not a lane index.
pub fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    s.split('.')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad schedule component {p:?} in {s:?}"))
        })
        .collect()
}

/// Replay `prefix` on a fresh program. Returns the program and the
/// number of preemptions the prefix contains (a switch away from a lane
/// that could still run).
fn replay(mk: &dyn Fn() -> Box<dyn Program>, prefix: &[usize]) -> (Box<dyn Program>, usize) {
    let mut p = mk();
    let mut preemptions = 0;
    for (i, &t) in prefix.iter().enumerate() {
        if i > 0 {
            let prev = prefix[i - 1];
            if prev != t && !p.done(prev) {
                preemptions += 1;
            }
        }
        assert!(!p.done(t), "schedule steps a finished lane {t}");
        p.step(t);
    }
    (p, preemptions)
}

/// Run one explicit schedule to completion and analyze it.
///
/// The schedule must drive every lane to `done` (this is checked) —
/// it is the replay side of `--repro`.
///
/// # Errors
/// If the schedule is malformed or incomplete.
pub fn run_schedule(
    mk: &dyn Fn() -> Box<dyn Program>,
    schedule: &str,
) -> Result<(RaceReport, Result<(), String>), String> {
    let steps = parse_schedule(schedule)?;
    let mut p = mk();
    let lanes = p.threads();
    for (i, &t) in steps.iter().enumerate() {
        if t >= lanes {
            return Err(format!("lane {t} out of range ({lanes} lanes)"));
        }
        if p.done(t) {
            return Err(format!("step {i}: lane {t} already finished"));
        }
        p.step(t);
    }
    for t in 0..lanes {
        if !p.done(t) {
            return Err(format!("incomplete schedule: lane {t} not finished"));
        }
    }
    let trace = p.trace();
    let report = analyze(&trace);
    Ok((report, p.check_outcome()))
}

/// Exhaustively explore every schedule of `mk`'s program with at most
/// `max_preemptions` preemptions, analyzing each complete one.
///
/// Replays from scratch per prefix — quadratic in schedule length,
/// irrelevant at kernel scale (≤ [`MAX_STEPS`] steps) and immune to
/// snapshot/restore bugs.
#[must_use]
pub fn explore(mk: &dyn Fn() -> Box<dyn Program>, max_preemptions: usize) -> ExploreResult {
    let mut result = ExploreResult::default();
    // DFS over prefixes, managed explicitly so the recursion depth
    // cannot blow the stack.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        assert!(
            prefix.len() <= MAX_STEPS,
            "kernel exceeded {MAX_STEPS} steps — a lane is not terminating"
        );
        let (mut p, preemptions) = replay(mk, &prefix);
        let lanes = p.threads();
        let runnable: Vec<usize> = (0..lanes).filter(|&t| !p.done(t)).collect();
        if runnable.is_empty() {
            result.schedules += 1;
            let trace = p.trace();
            let report = analyze(&trace);
            let outcome = p.check_outcome();
            if !report.is_clean() || outcome.is_err() {
                if result.failures.len() < MAX_FAILURES {
                    result.failures.push(Failure {
                        schedule: fmt_schedule(&prefix),
                        report,
                        outcome,
                    });
                } else {
                    result.failures_dropped += 1;
                }
            }
            if result.schedules >= MAX_SCHEDULES {
                result.truncated = true;
                return result;
            }
            continue;
        }
        // Push in reverse so lane 0 is explored first (stable,
        // readable schedule strings for repro lines).
        for &t in runnable.iter().rev() {
            let is_preemption = prefix
                .last()
                .is_some_and(|&prev| prev != t && runnable.contains(&prev));
            if is_preemption && preemptions >= max_preemptions {
                continue;
            }
            let mut next = prefix.clone();
            next.push(t);
            stack.push(next);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::trace::{Event, TraceMode};
    use pmem_sim::PersistDomain;

    /// Two lanes, `steps` steps each, emitting racy or disjoint plain
    /// stores into a synthetic trace.
    struct Toy {
        steps: usize,
        pc: [usize; 2],
        shared: bool,
        events: Vec<Event>,
    }

    impl Toy {
        fn mk(steps: usize, shared: bool) -> Box<dyn Program> {
            Box::new(Toy {
                steps,
                pc: [0; 2],
                shared,
                events: Vec::new(),
            })
        }
    }

    impl Program for Toy {
        fn threads(&self) -> usize {
            2
        }
        fn done(&self, t: usize) -> bool {
            self.pc[t] >= self.steps
        }
        fn step(&mut self, t: usize) {
            let addr = if self.shared { 64 } else { 64 + 64 * t as u64 };
            self.events.push(Event::Store {
                thread: t,
                addr,
                len: 8,
            });
            self.pc[t] += 1;
        }
        fn trace(&mut self) -> Trace {
            let mut tr = Trace::synthetic(PersistDomain::Eadr, std::mem::take(&mut self.events));
            tr.mode = TraceMode::Race;
            tr
        }
    }

    #[test]
    fn schedule_count_matches_preemption_bound() {
        // 2 lanes × 2 steps, 0 preemptions: each lane runs to completion
        // once scheduled, and the only choices are at lane-completion
        // boundaries → exactly 2 schedules (0011, 1100).
        let r = explore(&|| Toy::mk(2, false), 0);
        assert_eq!(r.schedules, 2);
        assert!(r.is_clean());
        // Unbounded (large) preemptions: all interleavings of 2+2 steps
        // = C(4,2) = 6.
        let r = explore(&|| Toy::mk(2, false), 8);
        assert_eq!(r.schedules, 6);
        assert!(r.is_clean());
    }

    #[test]
    fn shared_writes_detected_in_every_schedule() {
        let r = explore(&|| Toy::mk(1, true), 4);
        assert_eq!(r.schedules, 2);
        assert_eq!(r.failures.len() + r.failures_dropped, 2);
    }

    #[test]
    fn repro_roundtrip() {
        let r = explore(&|| Toy::mk(1, true), 4);
        let sched = r.failures[0].schedule.clone();
        let (report, outcome) = run_schedule(&|| Toy::mk(1, true), &sched).unwrap();
        assert!(!report.is_clean());
        assert!(outcome.is_ok());
    }

    #[test]
    fn malformed_schedules_rejected() {
        assert!(run_schedule(&|| Toy::mk(1, false), "0.x").is_err());
        assert!(run_schedule(&|| Toy::mk(1, false), "0.5").is_err());
        // Incomplete: lane 1 never runs.
        assert!(run_schedule(&|| Toy::mk(1, false), "0").is_err());
        // Overruns lane 0.
        assert!(run_schedule(&|| Toy::mk(1, false), "0.0.1").is_err());
    }
}
