//! Engine micro-kernels and injected-race fixtures for the explorer.
//!
//! Each kernel is a 2–3-lane [`Program`] over a real [`PmemDevice`]
//! (race-mode trace live), modelling one of the engine's lock-free
//! protocols with its real constants and primitives:
//!
//! * **log-window claim** — the `LogWindow` commit handshake: payload
//!   write, (ADR) flush+fence, commit-record publish via a release
//!   store of `COMMITTED`, concurrent reader gated on an acquire load.
//! * **Met-Cache counter** — two lanes CAS-incrementing one
//!   [`MetaStore::Dram`] cell, exercising the real instrumentation
//!   (shard lock edges + AcqRel CAS events).
//! * **index root swing** — install-then-publish of a node behind an
//!   atomic root pointer.
//!
//! The *fixtures* (`expect_clean = false`) are deliberately broken
//! variants — the detector's regression suite. Every fixture must
//! produce at least one failing schedule; every correct kernel must
//! produce none, across the whole preemption-bounded space.

use falcon_core::logwindow::COMMITTED;
use falcon_core::meta::{DramMeta, MetaStore};
use falcon_storage::tuple::TupleRef;
use pmem_sim::trace::{Event, Trace};
use pmem_sim::{CostModel, MemCtx, PAddr, PersistDomain, PmemDevice, SimConfig};

use crate::sched::Program;

/// One explorable kernel.
pub struct KernelSpec {
    /// Stable name (the left half of a `--repro NAME:SCHEDULE` line).
    pub name: &'static str,
    /// One-line description for listings.
    pub about: &'static str,
    /// `true` for correct protocols (the sweep must find nothing),
    /// `false` for fixtures (the sweep must find at least one failing
    /// schedule).
    pub expect_clean: bool,
    /// Preemption bound for the exhaustive sweep.
    pub preemptions: usize,
    /// Fresh program instance (one per schedule).
    pub build: fn() -> Box<dyn Program>,
}

/// All kernels and fixtures, correct protocols first.
#[must_use]
pub fn lineup() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "log_window_claim_eadr",
            about: "LogWindow commit handshake under eADR: release-publish COMMITTED, \
                    acquire-gated reader",
            expect_clean: true,
            preemptions: 3,
            build: || Box::new(LogClaim::new(PersistDomain::Eadr, true)),
        },
        KernelSpec {
            name: "log_window_claim_adr",
            about: "LogWindow commit handshake under ADR: log flushed+fenced before the \
                    commit record is published (R5-clean)",
            expect_clean: true,
            preemptions: 3,
            build: || Box::new(LogClaim::new(PersistDomain::Adr, true)),
        },
        KernelSpec {
            name: "metcache_counter",
            about: "two lanes CAS-increment one Met-Cache (MetaStore::Dram) cell through \
                    the real shard-lock + AcqRel instrumentation",
            expect_clean: true,
            preemptions: 3,
            build: || Box::new(MetCounter::new()),
        },
        KernelSpec {
            name: "root_swing",
            about: "index root swing: node written, then published by a release store of \
                    the root pointer; reader acquires before dereferencing",
            expect_clean: true,
            preemptions: 3,
            build: || Box::new(RootSwing::new()),
        },
        // ---------------- fixtures (must be detected) ----------------
        KernelSpec {
            name: "unsync_counter",
            about: "FIXTURE: two lanes read-modify-write a plain counter with no \
                    synchronization (lost update + data race)",
            expect_clean: false,
            preemptions: 2,
            build: || Box::new(UnsyncCounter::new()),
        },
        KernelSpec {
            name: "publish_before_flush",
            about: "FIXTURE: ADR commit record published before the log lines are \
                    flushed+fenced (rule R5)",
            expect_clean: false,
            preemptions: 2,
            build: || Box::new(LogClaim::new(PersistDomain::Adr, false)),
        },
        KernelSpec {
            name: "wrong_thread_unlock",
            about: "FIXTURE: lane 1 releases a lock lane 0 acquired (lock discipline)",
            expect_clean: false,
            preemptions: 2,
            build: || Box::new(WrongThreadUnlock::new()),
        },
        KernelSpec {
            name: "racy_stat_increment",
            about: "FIXTURE: a plain statistics word written by one lane while another \
                    reads it (read-write race)",
            expect_clean: false,
            preemptions: 2,
            build: || Box::new(RacyStat::new()),
        },
        KernelSpec {
            name: "relaxed_publish",
            about: "FIXTURE: payload published through a relaxed store; the acquire \
                    reader gets no happens-before edge (weakened-ordering audit check)",
            expect_clean: false,
            preemptions: 2,
            build: || Box::new(RelaxedPublish::new()),
        },
    ]
}

/// Look up a kernel by name (for `--repro NAME:SCHEDULE`).
#[must_use]
pub fn find(name: &str) -> Option<KernelSpec> {
    lineup().into_iter().find(|k| k.name == name)
}

/// Shared scaffolding: a race-tracing device plus per-lane contexts and
/// program counters.
struct Base {
    dev: PmemDevice,
    ctx: Vec<MemCtx>,
    pc: Vec<usize>,
}

impl Base {
    fn new(domain: PersistDomain, lanes: usize) -> Base {
        let dev = PmemDevice::new(SimConfig::small().with_domain(domain)).expect("sim config");
        dev.trace_start_race();
        Base {
            dev,
            ctx: (0..lanes).map(MemCtx::new).collect(),
            pc: vec![0; lanes],
        }
    }
}

// Disjoint cache lines for kernel state.
const PAYLOAD: PAddr = PAddr(4096);
const STATE: PAddr = PAddr(4160);
const ROOT: PAddr = PAddr(8192);
const NODE: PAddr = PAddr(8256);
const COUNTER: PAddr = PAddr(12288);
const FLAG: PAddr = PAddr(12352);
const LOCKWORD: PAddr = PAddr(16384);

/// The `LogWindow` commit handshake, correct (`flush`) or broken.
///
/// Lane 0 (writer): append a 64 B record image, flush+fence it under
/// ADR when `flush`, then publish `COMMITTED` in the slot-state word
/// with a release store (mirroring `LogWindow::commit`). Lane 1
/// (reader): acquire-load the state word once; only if it observes
/// `COMMITTED` does it read the record payload — the exact gate
/// recovery and GC use.
struct LogClaim {
    b: Base,
    flush: bool,
    adr: bool,
}

impl LogClaim {
    fn new(domain: PersistDomain, flush: bool) -> LogClaim {
        LogClaim {
            b: Base::new(domain, 2),
            flush,
            adr: domain == PersistDomain::Adr,
        }
    }
}

impl Program for LogClaim {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= if t == 0 { 4 } else { 2 }
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match (t, self.b.pc[t]) {
            (0, 0) => {
                dev.trace_emit(Event::TxnBegin { thread: 0, tid: 1 });
                dev.trace_emit(Event::LogRange {
                    thread: 0,
                    addr: PAYLOAD.0,
                    len: 64,
                });
                dev.write(PAYLOAD, &[0xAB; 64], ctx);
            }
            (0, 1) => {
                if self.adr && self.flush {
                    dev.clwb(PAYLOAD, ctx);
                } // eADR: the store is already in the persistence domain.
            }
            (0, 2) => {
                if self.adr && self.flush {
                    dev.sfence(ctx);
                }
            }
            (0, 3) => {
                dev.trace_emit(Event::CommitRecord {
                    thread: 0,
                    addr: STATE.0,
                });
                dev.store_u64(STATE, COMMITTED, ctx);
            }
            (1, 0) => {
                let v = dev.load_u64(STATE, ctx);
                if v != COMMITTED {
                    // Slot not committed yet: the reader gives up (GC
                    // would skip the slot).
                    self.b.pc[1] = 2;
                    return;
                }
            }
            (1, 1) => {
                let mut buf = [0u8; 64];
                dev.read(PAYLOAD, &mut buf, ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

/// Two lanes CAS-increment word 0 of one Met-Cache cell.
struct MetCounter {
    b: Base,
    store: MetaStore,
    seen: [u64; 2],
    final_val: u64,
}

impl MetCounter {
    fn new() -> MetCounter {
        MetCounter {
            b: Base::new(PersistDomain::Eadr, 2),
            store: MetaStore::Dram(DramMeta::new(CostModel::default())),
            seen: [0; 2],
            final_val: 0,
        }
    }
    fn tuple() -> TupleRef {
        TupleRef::new(PAddr(64))
    }
}

impl Program for MetCounter {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        // pc 2 = increment landed. The CAS retry loop is bounded: each
        // failure means the *other* lane's single increment landed, so a
        // lane retries at most once.
        self.b.pc[t] >= 2
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match self.b.pc[t] {
            0 => {
                self.seen[t] = self.store.load(&dev, Self::tuple(), 0, ctx);
                self.b.pc[t] = 1;
            }
            1 => {
                let old = self.seen[t];
                match self.store.cas(&dev, Self::tuple(), 0, old, old + 1, ctx) {
                    Ok(_) => self.b.pc[t] = 2,
                    Err(_) => self.b.pc[t] = 0,
                }
            }
            _ => unreachable!("lane stepped past completion"),
        }
    }
    fn trace(&mut self) -> Trace {
        let trace = self.b.dev.trace_take();
        // Recording is off now: read the final value for check_outcome.
        let mut ctx = MemCtx::new(0);
        self.final_val = self.store.load(&self.b.dev, Self::tuple(), 0, &mut ctx);
        trace
    }
    fn check_outcome(&self) -> Result<(), String> {
        if self.final_val == 2 {
            Ok(())
        } else {
            Err(format!("lost update: counter is {} not 2", self.final_val))
        }
    }
}

/// Install-then-publish of an index node behind an atomic root pointer.
struct RootSwing {
    b: Base,
}

impl RootSwing {
    fn new() -> RootSwing {
        RootSwing {
            b: Base::new(PersistDomain::Eadr, 2),
        }
    }
}

impl Program for RootSwing {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= 2
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match (t, self.b.pc[t]) {
            (0, 0) => dev.write(NODE, &[0x11; 64], ctx),
            (0, 1) => dev.store_u64(ROOT, NODE.0, ctx),
            (1, 0) => {
                let r = dev.load_u64(ROOT, ctx);
                if r == 0 {
                    // Old root still installed: nothing to dereference.
                    self.b.pc[1] = 2;
                    return;
                }
            }
            (1, 1) => {
                let mut buf = [0u8; 64];
                dev.read(NODE, &mut buf, ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

/// FIXTURE: unsynchronized read-modify-write of a plain counter.
struct UnsyncCounter {
    b: Base,
    seen: [u64; 2],
}

impl UnsyncCounter {
    fn new() -> UnsyncCounter {
        UnsyncCounter {
            b: Base::new(PersistDomain::Eadr, 2),
            seen: [0; 2],
        }
    }
}

impl Program for UnsyncCounter {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= 2
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match self.b.pc[t] {
            0 => {
                let mut buf = [0u8; 8];
                dev.read(COUNTER, &mut buf, ctx);
                self.seen[t] = u64::from_le_bytes(buf);
            }
            1 => {
                dev.write(COUNTER, &(self.seen[t] + 1).to_le_bytes(), ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

/// FIXTURE: lane 1 releases the spinlock lane 0 acquired.
struct WrongThreadUnlock {
    b: Base,
}

impl WrongThreadUnlock {
    fn new() -> WrongThreadUnlock {
        WrongThreadUnlock {
            b: Base::new(PersistDomain::Eadr, 2),
        }
    }
}

const FIXTURE_LOCK: u64 = 0xF1F0;

impl Program for WrongThreadUnlock {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= 1
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match t {
            0 => {
                if dev.cas_u64(LOCKWORD, 0, 1, ctx).is_ok() {
                    dev.trace_emit(Event::LockAcquire {
                        thread: 0,
                        lock: FIXTURE_LOCK,
                        excl: true,
                    });
                }
            }
            1 => {
                // The bug: unlocking from a thread that never acquired.
                dev.trace_emit(Event::LockRelease {
                    thread: 1,
                    lock: FIXTURE_LOCK,
                    excl: true,
                });
                dev.store_u64(LOCKWORD, 0, ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

/// FIXTURE: a plain stats word racily read while written.
struct RacyStat {
    b: Base,
}

impl RacyStat {
    fn new() -> RacyStat {
        RacyStat {
            b: Base::new(PersistDomain::Eadr, 2),
        }
    }
}

impl Program for RacyStat {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= 1
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match t {
            0 => dev.write(COUNTER, &7u64.to_le_bytes(), ctx),
            1 => {
                let mut buf = [0u8; 8];
                dev.read(COUNTER, &mut buf, ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

/// FIXTURE: the root-swing shape with the publish weakened to relaxed.
struct RelaxedPublish {
    b: Base,
}

impl RelaxedPublish {
    fn new() -> RelaxedPublish {
        RelaxedPublish {
            b: Base::new(PersistDomain::Eadr, 2),
        }
    }
}

impl Program for RelaxedPublish {
    fn threads(&self) -> usize {
        2
    }
    fn done(&self, t: usize) -> bool {
        self.b.pc[t] >= 2
    }
    fn step(&mut self, t: usize) {
        let dev = self.b.dev.clone();
        let ctx = &mut self.b.ctx[t];
        match (t, self.b.pc[t]) {
            (0, 0) => dev.write(NODE, &[0x22; 64], ctx),
            // The bug: a relaxed publish carries no happens-before edge,
            // so the reader's payload access races with (0,0).
            (0, 1) => dev.store_u64_relaxed(FLAG, 1, ctx),
            (1, 0) => {
                let v = dev.load_u64(FLAG, ctx);
                if v == 0 {
                    self.b.pc[1] = 2;
                    return;
                }
            }
            (1, 1) => {
                let mut buf = [0u8; 64];
                dev.read(NODE, &mut buf, ctx);
            }
            _ => unreachable!("lane stepped past completion"),
        }
        self.b.pc[t] += 1;
    }
    fn trace(&mut self) -> Trace {
        self.b.dev.trace_take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::explore;

    #[test]
    fn correct_kernels_sweep_clean() {
        for k in lineup().into_iter().filter(|k| k.expect_clean) {
            let r = explore(&k.build, k.preemptions);
            assert!(r.schedules > 0, "{}: no schedules", k.name);
            assert!(
                r.is_clean(),
                "{}: {} failing schedule(s); first: {} → {}",
                k.name,
                r.failures.len() + r.failures_dropped,
                r.failures.first().map_or("?", |f| f.schedule.as_str()),
                r.failures
                    .first()
                    .map_or_else(String::new, |f| format!("{}{:?}", f.report, f.outcome)),
            );
        }
    }

    #[test]
    fn fixtures_are_detected() {
        for k in lineup().into_iter().filter(|k| !k.expect_clean) {
            let r = explore(&k.build, k.preemptions);
            assert!(
                !r.is_clean(),
                "{}: fixture not detected over {} schedules",
                k.name,
                r.schedules
            );
        }
    }

    #[test]
    fn find_resolves_every_lineup_name() {
        for k in lineup() {
            assert!(find(k.name).is_some());
        }
        assert!(find("no_such_kernel").is_none());
    }
}
