//! Vector clocks for happens-before tracking.
//!
//! Thread ids in a trace are small dense integers (worker indexes), so a
//! clock is a plain growable vector indexed by thread id. Missing
//! components read as zero.

/// A vector clock: component `t` is the number of events thread `t` had
/// executed at the moment this clock was snapshotted (plus one, since
/// every thread starts its own component at 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock.
    #[must_use]
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component `t` (zero if never set).
    #[must_use]
    pub fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Set component `t` to `v`.
    pub fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Increment component `t` by one.
    pub fn tick(&mut self, t: usize) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum: after the call `self >= other` holds.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(o);
        }
    }

    /// Whether an event at clock value `c` on thread `t` happens-before
    /// the point this clock describes (i.e. this clock has seen it).
    #[must_use]
    pub fn covers(&self, t: usize, c: u64) -> bool {
        self.get(t) >= c
    }

    /// Reset to the zero clock.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_components_read_zero() {
        let vc = VClock::new();
        assert_eq!(vc.get(0), 0);
        assert_eq!(vc.get(63), 0);
        assert!(!vc.covers(3, 1));
        assert!(vc.covers(3, 0));
    }

    #[test]
    fn tick_and_join() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        a.tick(2);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(2), 1);

        let mut b = VClock::new();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 1);
        // Join is monotone: a is unchanged and b now covers a's events.
        assert!(b.covers(0, 2));
        assert!(!a.covers(1, 1));
    }
}
