//! Command-line race/persist-order sweep driver.
//!
//! ```text
//! falcon-race [--kernel SUBSTR] [--preemptions N] [--smoke-only]
//!             [--kernels-only] [--repro NAME:SCHEDULE] [--list] [--json]
//! ```
//!
//! The default run sweeps every kernel's bounded interleaving space and
//! then the real-thread smoke workloads. It exits 0 when every correct
//! kernel and smoke run is clean **and** every fixture is detected;
//! anything else prints a ready-to-paste `--repro NAME:SCHEDULE` line
//! and exits 1 (mirroring the falcon-chaos UX).

use falcon_race::kernels::{find, lineup, KernelSpec};
use falcon_race::sched::explore;
use falcon_race::{run_schedule, smoke};

use falcon_core::EngineConfig;
use pmem_sim::PersistDomain;

fn usage() -> ! {
    eprintln!(
        "usage: falcon-race [--kernel SUBSTR] [--preemptions N] [--smoke-only] \
         [--kernels-only] [--repro NAME:SCHEDULE] [--list] [--json]"
    );
    std::process::exit(2)
}

/// Sweep one kernel; returns `true` if its expectation held.
fn sweep(k: &KernelSpec, preemptions: Option<usize>) -> bool {
    let bound = preemptions.unwrap_or(k.preemptions);
    let r = explore(&k.build, bound);
    let status = match (k.expect_clean, r.is_clean()) {
        (true, true) => "clean",
        (false, false) => "detected",
        (true, false) => "VIOLATION",
        (false, true) => "MISSED",
    };
    println!(
        "{:<24} {:>6} schedules  (≤{} preemptions)  {}",
        k.name, r.schedules, bound, status
    );
    if k.expect_clean {
        for f in &r.failures {
            eprintln!(
                "VIOLATION {}: schedule {}\n{}{}  replay: falcon-race --repro {}:{}",
                k.name,
                f.schedule,
                f.report,
                f.outcome
                    .as_ref()
                    .err()
                    .map(|e| format!("  outcome: {e}\n"))
                    .unwrap_or_default(),
                k.name,
                f.schedule
            );
        }
        r.is_clean()
    } else {
        if r.is_clean() {
            eprintln!(
                "MISSED {}: fixture produced no finding over {} schedules — \
                 the detector has lost this bug class",
                k.name, r.schedules
            );
        } else if let Some(f) = r.failures.first() {
            println!(
                "  first failing schedule: {}  (replay: falcon-race --repro {}:{})",
                f.schedule, k.name, f.schedule
            );
        }
        !r.is_clean()
    }
}

fn run_smokes(summaries: &mut Vec<serde_json::Value>) -> bool {
    let mut ok = true;
    let runs = [
        ("falcon/eadr", EngineConfig::falcon(), PersistDomain::Eadr),
        ("inp/adr", EngineConfig::inp(), PersistDomain::Adr),
        ("zens/eadr", EngineConfig::zens(), PersistDomain::Eadr),
    ];
    for (label, engine_cfg, domain) in runs {
        let cfg = smoke::SmokeConfig {
            domain,
            ..smoke::SmokeConfig::default()
        };
        let r = smoke::run(&engine_cfg, &cfg);
        let clean = r.report.is_clean();
        println!(
            "smoke {:<18} {} threads  {} committed  {} retries  {}",
            label,
            cfg.threads,
            r.committed,
            r.retries,
            if clean { "clean" } else { "VIOLATION" }
        );
        // Same shape as the `race` section of the falcon-obs schema-v3
        // run report, keyed by smoke label.
        let s = r.report.summary();
        summaries.push(serde_json::json!({
            "label": label,
            "threads": s.threads,
            "events": s.events,
            "data_races": s.data_races,
            "persist_publishes": s.persist_publishes,
            "lock_discipline": s.lock_discipline,
            "clean": s.is_clean(),
        }));
        if !clean {
            eprintln!("VIOLATION smoke {label}:\n{}", r.report);
            ok = false;
        }
    }
    ok
}

fn main() {
    let mut filter = String::new();
    let mut preemptions: Option<usize> = None;
    let mut smoke_only = false;
    let mut kernels_only = false;
    let mut repro: Option<(String, String)> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--kernel" => filter = args.next().unwrap_or_else(|| usage()),
            "--preemptions" => {
                preemptions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--smoke-only" => smoke_only = true,
            "--kernels-only" => kernels_only = true,
            "--json" => json = true,
            "--repro" => {
                let v = args.next().unwrap_or_else(|| usage());
                let (name, sched) = v.split_once(':').unwrap_or_else(|| usage());
                repro = Some((name.to_string(), sched.to_string()));
            }
            "--list" => {
                for k in lineup() {
                    println!(
                        "{:<24} [{}] {}",
                        k.name,
                        if k.expect_clean { "kernel" } else { "fixture" },
                        k.about
                    );
                }
                return;
            }
            _ => usage(),
        }
    }

    if let Some((name, sched)) = repro {
        let Some(k) = find(&name) else {
            eprintln!("unknown kernel {name:?} (see --list)");
            std::process::exit(2);
        };
        match run_schedule(&k.build, &sched) {
            Ok((report, outcome)) => {
                let bad = !report.is_clean() || outcome.is_err();
                print!("{report}");
                if let Err(e) = &outcome {
                    println!("outcome: {e}");
                }
                if bad {
                    println!("replay: falcon-race --repro {name}:{sched}");
                } else {
                    println!("{name}: clean on schedule {sched}");
                }
                std::process::exit(i32::from(bad));
            }
            Err(e) => {
                eprintln!("bad schedule: {e}");
                std::process::exit(2);
            }
        }
    }

    let specs: Vec<KernelSpec> = lineup()
        .into_iter()
        .filter(|k| k.name.contains(&filter))
        .collect();
    if specs.is_empty() && !smoke_only {
        eprintln!("no kernel matches {filter:?}");
        std::process::exit(2);
    }

    let mut ok = true;
    let mut kernels = 0usize;
    let mut fixtures = 0usize;
    if !smoke_only {
        for k in &specs {
            if k.expect_clean {
                kernels += 1;
            } else {
                fixtures += 1;
            }
            ok &= sweep(k, preemptions);
        }
    }
    let mut smokes = Vec::new();
    if !kernels_only && filter.is_empty() {
        ok &= run_smokes(&mut smokes);
    }

    if json {
        // Machine-readable summary for harness consumption.
        let v = serde_json::json!({
            "kernels": kernels,
            "fixtures": fixtures,
            "smokes": smokes,
            "ok": ok,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("serialize summary")
        );
    }
    if !ok {
        std::process::exit(1);
    }
    println!("race: {kernels} kernel(s) clean, {fixtures} fixture(s) detected, smoke clean");
}
