//! Mode-separation regression: race-mode recording must not perturb
//! the persist-order plane.
//!
//! The trace recorder used to assume a single event stream; the race
//! extension added thread stamps, plain loads, atomic kinds and lock
//! edges. This suite pins the contract that made that safe:
//!
//! 1. an identical single-threaded workload recorded in *race* mode,
//!    projected through `Trace::persist_view()`, yields byte-identical
//!    events to a *persist*-mode recording — and byte-identical R1–R4
//!    verdicts from falcon-check;
//! 2. race-mode stamps are well-formed (globally increasing epoch,
//!    per-thread monotonic sequence).

use falcon_core::table::{IndexKind, TableDef};
use falcon_core::{Engine, EngineConfig};
use falcon_storage::{ColType, Schema};
use pmem_sim::trace::{Trace, TraceMode};
use pmem_sim::{PersistDomain, PmemDevice, SimConfig};

const TABLE: u32 = 0;
const VAL_OFF: u32 = 8;

fn key_fn(_s: &Schema, row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().unwrap())
}

fn kv_def() -> TableDef {
    TableDef {
        schema: Schema::new("kv", &[("k", ColType::U64), ("v", ColType::Bytes(56))]),
        index_kind: IndexKind::Hash,
        capacity_hint: 10_000,
        primary_key: key_fn,
        secondary: None,
    }
}

fn row(k: u64, tag: u8) -> Vec<u8> {
    let mut r = vec![tag; 64];
    r[0..8].copy_from_slice(&k.to_le_bytes());
    r
}

/// Run the same single-threaded workload on a fresh engine and record
/// it in `mode`.
fn recorded(cfg: EngineConfig, domain: PersistDomain, mode: TraceMode) -> Trace {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(256 << 20)
            .with_domain(domain),
    )
    .unwrap();
    let e = Engine::create(dev, cfg.with_threads(1), &[kv_def()]).unwrap();
    match mode {
        TraceMode::Persist => e.device().trace_start(),
        TraceMode::Race => e.device().trace_start_race(),
    }
    let mut w = e.worker(0).unwrap();
    for k in 0..30u64 {
        let mut t = e.begin(&mut w, false);
        t.insert(TABLE, &row(k, 1)).unwrap();
        t.commit().unwrap();
    }
    for k in 0..15u64 {
        let mut t = e.begin(&mut w, false);
        t.update(TABLE, k, &[(VAL_OFF, &[2u8; 8])]).unwrap();
        t.commit().unwrap();
    }
    for k in 20..25u64 {
        let mut t = e.begin(&mut w, false);
        t.delete(TABLE, k).unwrap();
        t.commit().unwrap();
    }
    e.device().trace_take()
}

fn assert_mode_equivalent(cfg: EngineConfig, domain: PersistDomain) {
    let persist = recorded(cfg.clone(), domain, TraceMode::Persist);
    let race = recorded(cfg, domain, TraceMode::Race);

    race.validate_stamps().expect("race stamps well-formed");
    assert_eq!(race.mode, TraceMode::Race);
    assert_eq!(persist.mode, TraceMode::Persist);
    assert!(
        race.events.len() > persist.events.len(),
        "race mode must add load/atomic detail"
    );

    let view = race.persist_view();
    assert_eq!(
        view.events, persist.events,
        "persist projection of a race trace must equal a persist-mode recording"
    );

    // And the R1–R4 verdicts must be byte-identical.
    let ra = falcon_check::check(&persist);
    let rb = falcon_check::check(&view);
    let a = format!("{ra:?}");
    let b = format!("{rb:?}");
    assert_eq!(
        a,
        b,
        "checker verdicts diverge between modes:\n A violations {} lints {} txns {}\n \
         B violations {} lints {} txns {}",
        ra.violations.len(),
        ra.lints.len(),
        ra.txns_committed,
        rb.violations.len(),
        rb.lints.len(),
        rb.txns_committed
    );
}

#[test]
fn falcon_eadr_mode_equivalence() {
    assert_mode_equivalent(EngineConfig::falcon(), PersistDomain::Eadr);
}

#[test]
fn inp_adr_mode_equivalence() {
    // ADR is the domain where R1–R4 actually bite: the projection must
    // preserve every flush/fence relationship, not just the stores.
    assert_mode_equivalent(EngineConfig::inp(), PersistDomain::Adr);
}

#[test]
fn falcon_adr_violations_identical_across_modes() {
    // Falcon's unflushed window *fires* R1 under ADR; both recordings
    // must report the identical violations, proving race mode doesn't
    // mask or duplicate findings either.
    let persist = recorded(
        EngineConfig::falcon(),
        PersistDomain::Adr,
        TraceMode::Persist,
    );
    let race = recorded(EngineConfig::falcon(), PersistDomain::Adr, TraceMode::Race);
    let a = falcon_check::check(&persist);
    let b = falcon_check::check(&race.persist_view());
    assert!(!a.is_clean(), "Falcon on ADR must violate R1");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn zens_metcache_single_thread_race_clean() {
    // The Met-Cache instrumentation (AcqRel CAS + shard-lock edges) on
    // a single thread must produce zero findings — the analyzer's
    // same-thread baseline over the real engine path.
    let race = recorded(EngineConfig::zens(), PersistDomain::Eadr, TraceMode::Race);
    falcon_race::analyze(&race).assert_clean();
}
