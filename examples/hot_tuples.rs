//! Hot-tuple tracking under a skewed workload: run YCSB-A with Zipfian
//! (θ = 0.99) keys and watch Falcon's selective flush suppress NVM
//! writes that the All-Flush variant keeps paying — the Figure 9/11
//! Zipfian effect, in miniature.
//!
//! ```sh
//! cargo run --release --example hot_tuples
//! ```

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};

fn main() {
    let threads = 4;
    let rc = RunConfig {
        threads,
        txns_per_thread: 8_000,
        warmup_per_thread: 800,
        ..Default::default()
    };
    println!(
        "YCSB-A, Zipfian theta=0.99, 96k records (~100 MB >> 8 MB simulated LLC), {threads} threads\n"
    );
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>12}",
        "engine", "MTxn/s", "clwb issued", "media MB", "write amp"
    );
    let mut baseline = 0.0;
    let mut falcon_mtps = 0.0;
    for cfg in [
        EngineConfig::falcon(),           // Hot-tuple tracking ON.
        EngineConfig::falcon_all_flush(), // Tracking OFF: flush everything.
        EngineConfig::falcon_no_flush(),  // No clwb at all.
        EngineConfig::inp(),              // Conventional NVM log too.
    ] {
        let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Zipfian).with_records(96 << 10));
        let engine = build_engine(
            cfg.clone().with_cc(CcAlgo::Occ).with_threads(threads),
            &[y.table_def()],
            256 << 20,
            None,
        );
        y.setup(&engine);
        let r = run(&engine, &y, &rc);
        println!(
            "{:<22} {:>10.3} {:>14} {:>14} {:>12.2}",
            cfg.name,
            r.mtps(),
            r.stats.total.clwb_issued,
            r.stats.total.media_bytes_written() >> 20,
            r.stats.total.write_amplification(),
        );
        if cfg.name == "Inp" {
            baseline = r.mtps();
        }
        if cfg.name == "Falcon" {
            falcon_mtps = r.mtps();
        }
    }
    println!(
        "\nFalcon / Inp under Zipfian: {:.2}x (the paper reports ~3.14x at 48 threads)",
        falcon_mtps / baseline
    );
}
