//! Crash-torture: repeatedly crash a live TPC-C database at random
//! points and verify after every recovery that (a) recovery stays
//! milliseconds-fast and heap-size independent, and (b) the money
//! invariant (warehouse YTD == district YTD totals) holds.
//!
//! ```sh
//! cargo run --release --example crash_torture
//! ```

use falcon::engine::{recover, CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::tpcc::{self, Tpcc, TpccScale};

fn money_totals(engine: &falcon::Engine, scale: &TpccScale) -> (f64, f64) {
    let mut w = engine.worker(0).unwrap();
    let mut txn = engine.begin(&mut w, false);
    let (mut wt, mut dt) = (0.0, 0.0);
    for wh in 1..=scale.warehouses {
        let row = txn.read(tpcc::WAREHOUSE, tpcc::wh_key(wh)).unwrap();
        wt += f64::from_le_bytes(
            row[tpcc::col::W_YTD as usize..tpcc::col::W_YTD as usize + 8]
                .try_into()
                .unwrap(),
        );
        for d in 1..=scale.districts {
            let row = txn.read(tpcc::DISTRICT, tpcc::dist_key(wh, d)).unwrap();
            dt += f64::from_le_bytes(
                row[tpcc::col::D_YTD as usize..tpcc::col::D_YTD as usize + 8]
                    .try_into()
                    .unwrap(),
            );
        }
    }
    txn.commit().unwrap();
    (wt, dt)
}

fn main() {
    let threads = 2;
    let cfg = EngineConfig::falcon()
        .with_cc(CcAlgo::TwoPl)
        .with_threads(threads);
    let t = Tpcc::new(TpccScale::tiny());
    let scale = t.scale().clone();
    let engine = build_engine(cfg.clone(), &t.table_defs(), scale.approx_bytes() * 4, None);
    t.setup(&engine);
    let mut engine = engine;

    for round in 1..=5 {
        let rc = RunConfig {
            threads,
            txns_per_thread: 200,
            warmup_per_thread: 0,
            ..Default::default()
        };
        let r = run(&engine, &t, &rc);
        let dev = engine.device().clone();
        drop(engine);
        dev.crash();
        let (e2, rep) = recover(dev, cfg.clone(), &t.table_defs()).unwrap();
        let (wt, dt) = money_totals(&e2, &scale);
        let consistent = (wt - dt).abs() < 1e-6 * wt.max(1.0);
        println!(
            "round {round}: ran {} txns, crashed, recovered in {:.3} virtual ms \
             (replayed {}, scanned {}), money invariant: {}",
            r.committed,
            rep.total_ns as f64 / 1e6,
            rep.committed_replayed,
            rep.tuples_scanned,
            if consistent { "OK" } else { "VIOLATED" }
        );
        assert!(consistent, "w_ytd {wt} != d_ytd {dt}");
        assert_eq!(rep.tuples_scanned, 0, "Falcon recovery must not scan");
        engine = e2;
    }
    println!("\n5 crash/recover rounds survived with invariants intact.");
}
