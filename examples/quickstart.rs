//! Quickstart: create a Falcon engine on a simulated eADR/NVM device,
//! run transactions, crash it, and recover in (virtual) microseconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use falcon::engine::table::{IndexKind, TableDef};
use falcon::storage::{ColType, Schema};
use falcon::{recover, Engine, EngineConfig, PmemDevice, SimConfig};

fn key(_s: &Schema, row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().unwrap())
}

fn account_row(id: u64, balance: u64) -> Vec<u8> {
    let mut r = vec![0u8; 16];
    r[0..8].copy_from_slice(&id.to_le_bytes());
    r[8..16].copy_from_slice(&balance.to_le_bytes());
    r
}

fn main() {
    // 1. A simulated NVM device with the CPU cache in the persistence
    //    domain (eADR). No clwb is ever *needed* for correctness here;
    //    Falcon issues them selectively, for performance.
    let dev = PmemDevice::new(SimConfig::small().with_capacity(64 << 20)).unwrap();

    // 2. One table: id -> balance.
    let accounts = TableDef {
        schema: Schema::new(
            "accounts",
            &[("id", ColType::U64), ("balance", ColType::U64)],
        ),
        index_kind: IndexKind::Hash,
        capacity_hint: 1_000,
        primary_key: key,
        secondary: None,
    };
    let engine = Engine::create(
        dev,
        EngineConfig::falcon().with_threads(1),
        std::slice::from_ref(&accounts),
    )
    .unwrap();
    let mut w = engine.worker(0).unwrap();

    // 3. Seed two accounts.
    let mut txn = engine.begin(&mut w, false);
    txn.insert(0, &account_row(1, 100)).unwrap();
    txn.insert(0, &account_row(2, 50)).unwrap();
    txn.commit().unwrap();

    // 4. Transfer 30 from account 1 to account 2, atomically.
    let mut txn = engine.begin(&mut w, false);
    let a = u64::from_le_bytes(txn.read_at(0, 1, 8, 8).unwrap().try_into().unwrap());
    let b = u64::from_le_bytes(txn.read_at(0, 2, 8, 8).unwrap().try_into().unwrap());
    txn.update(0, 1, &[(8, &(a - 30).to_le_bytes())]).unwrap();
    txn.update(0, 2, &[(8, &(b + 30).to_le_bytes())]).unwrap();
    txn.commit().unwrap();
    println!("transferred 30: balances now {} / {}", a - 30, b + 30);
    println!(
        "virtual time so far: {} ns; NVM media blocks written: {}",
        w.ctx.clock, w.ctx.stats.media_block_writes
    );

    // 5. Power failure — no warning, no flushing.
    let dev = engine.device().clone();
    drop(w);
    drop(engine);
    dev.crash();
    println!("crash!");

    // 6. Recovery replays the small log windows: milliseconds, not a
    //    heap scan.
    let (engine, report) =
        recover(dev, EngineConfig::falcon().with_threads(1), &[accounts]).unwrap();
    println!(
        "recovered in {:.3} virtual ms ({} committed replayed, {} tuples scanned)",
        report.total_ns as f64 / 1e6,
        report.committed_replayed,
        report.tuples_scanned
    );
    let mut w = engine.worker(0).unwrap();
    let mut txn = engine.begin(&mut w, false);
    let a = u64::from_le_bytes(txn.read_at(0, 1, 8, 8).unwrap().try_into().unwrap());
    let b = u64::from_le_bytes(txn.read_at(0, 2, 8, 8).unwrap().try_into().unwrap());
    txn.commit().unwrap();
    assert_eq!((a, b), (70, 80));
    println!("balances after recovery: {a} / {b} — the transfer survived");
}
