//! ADR vs eADR: *why* Falcon needs a persistent cache.
//!
//! §3.1 of the paper: on eADR you can *remove every flush instruction*
//! and stay correct, because the cache is in the persistence domain; on
//! ADR the same code silently loses committed work. This example runs
//! the same committed update on three platform/engine combinations,
//! starting each from a fully-persisted (quiesced) database image, and
//! crashes:
//!
//! 1. Falcon (No Flush) on **eADR** — zero clwb anywhere: durable.
//! 2. Falcon (No Flush) on **ADR** — the window and the updated tuple
//!    evaporate with the cache: the committed transaction is lost.
//! 3. Inp on **ADR** — the conventional clwb+sfence log makes the same
//!    update durable, at the cost of streaming log bytes to NVM.
//!
//! ```sh
//! cargo run --release --example adr_vs_eadr
//! ```

use falcon::engine::table::{IndexKind, TableDef};
use falcon::storage::{ColType, Schema};
use falcon::{recover, Engine, EngineConfig, PersistDomain, PmemDevice, SimConfig};

fn key(_s: &Schema, row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().unwrap())
}

fn def() -> TableDef {
    TableDef {
        schema: Schema::new("t", &[("k", ColType::U64), ("v", ColType::U64)]),
        index_kind: IndexKind::Hash,
        capacity_hint: 100,
        primary_key: key,
        secondary: None,
    }
}

fn trial(name: &str, cfg: EngineConfig, domain: PersistDomain) {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(128 << 20)
            .with_domain(domain),
    )
    .unwrap();
    let cfg = cfg.with_threads(1);
    let engine = Engine::create(dev.clone(), cfg.clone(), &[def()]).unwrap();
    let mut w = engine.worker(0).unwrap();

    // Seed a row, then update it in a committed transaction.
    let mut row = vec![0u8; 16];
    row[0..8].copy_from_slice(&1u64.to_le_bytes());
    row[8..16].copy_from_slice(&100u64.to_le_bytes());
    let mut t = engine.begin(&mut w, false);
    t.insert(0, &row).unwrap();
    t.commit().unwrap();
    // Persist the seeded image (setup is out of band on any platform).
    dev.quiesce();
    w.reset_clock();
    let mut t = engine.begin(&mut w, false);
    t.update(0, 1, &[(8, &999u64.to_le_bytes())]).unwrap();
    t.commit().unwrap();
    let flushes = w.ctx.stats.clwb_issued;

    drop(w);
    drop(engine);
    dev.crash();
    let (e2, _) = recover(dev, cfg, &[def()]).unwrap();
    if e2.num_tables() == 0 {
        println!("{name:<34} clwb/run {flushes:>6}   LOST      (catalog evaporated)");
        return;
    }
    let mut w = e2.worker(0).unwrap();
    let mut t = e2.begin(&mut w, false);
    let outcome = match t.read(0, 1) {
        Ok(r) => {
            let v = u64::from_le_bytes(r[8..16].try_into().unwrap());
            if v == 999 {
                "DURABLE   (committed update survived)".to_string()
            } else {
                format!("LOST      (read back v={v}; the committed 999 is gone)")
            }
        }
        Err(_) => "LOST      (row vanished entirely)".to_string(),
    };
    t.commit().unwrap();
    println!("{name:<34} clwb/run {flushes:>6}   {outcome}");
}

fn main() {
    println!(
        "engine on platform                 log flushes        post-crash state of a COMMITTED update\n"
    );
    trial(
        "Falcon (No Flush) on eADR",
        EngineConfig::falcon_no_flush(),
        PersistDomain::Eadr,
    );
    trial(
        "Falcon (No Flush) on ADR",
        EngineConfig::falcon_no_flush(),
        PersistDomain::Adr,
    );
    trial("Inp on ADR", EngineConfig::inp(), PersistDomain::Adr);
    println!(
        "\nOn eADR the flush-free engine is correct for free — that is the\n\
         opportunity the paper builds on. On ADR the identical code loses a\n\
         committed transaction, and durability requires Inp's explicit\n\
         clwb+sfence log streaming."
    );
}
