//! TPC-C shoot-out: Falcon vs the Inp and ZenS baselines on the same
//! scaled TPC-C database, reporting virtual throughput and NVM write
//! traffic — a miniature of the paper's Figure 7 headline.
//!
//! ```sh
//! cargo run --release --example tpcc_shootout
//! ```

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::tpcc::{Tpcc, TpccScale};

fn main() {
    let threads = 4;
    let rc = RunConfig {
        threads,
        txns_per_thread: 500,
        warmup_per_thread: 50,
        ..Default::default()
    };
    println!(
        "TPC-C, {} warehouses, {} threads, {} txns/thread\n",
        threads * 2,
        threads,
        rc.txns_per_thread
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "engine", "MTxn/s", "media MB", "clwb/txn", "aborts %"
    );
    let mut results = Vec::new();
    for cfg in [
        EngineConfig::falcon(),
        EngineConfig::falcon_no_flush(),
        EngineConfig::inp(),
        EngineConfig::zens(),
        EngineConfig::outp(),
    ] {
        let t = Tpcc::new(TpccScale::bench().with_warehouses(threads as u64 * 2));
        let engine = build_engine(
            cfg.clone().with_cc(CcAlgo::Occ).with_threads(threads),
            &t.table_defs(),
            t.scale().approx_bytes() * 2,
            None,
        );
        t.setup(&engine);
        let r = run(&engine, &t, &rc);
        println!(
            "{:<22} {:>12.3} {:>12} {:>12.1} {:>10.2}",
            cfg.name,
            r.mtps(),
            r.stats.total.media_bytes_written() >> 20,
            r.stats.total.clwb_issued as f64 / r.committed as f64,
            r.abort_ratio() * 100.0
        );
        results.push((cfg.name, r.mtps()));
    }
    let falcon = results[0].1;
    let inp = results.iter().find(|(n, _)| *n == "Inp").unwrap().1;
    println!(
        "\nFalcon / Inp speedup: {:.2}x (the paper reports 1.125-1.142x on TPC-C)",
        falcon / inp
    );
}
