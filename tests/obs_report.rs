//! End-to-end acceptance test for the `obs` feature: a YCSB-B Zipfian
//! run on the Falcon engine must produce a schema-versioned run report
//! with non-zero log-window appends, hot-LRU activity, per-phase
//! percentiles for every transaction type, and merged device stats.

#![cfg(feature = "obs")]

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::obs::report::{ReportMeta, RunReport};
use falcon::obs::Phase;
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};
use serde_json::Value;

fn ycsb_b_run() -> (falcon::workloads::harness::RunResult, usize) {
    let rc = RunConfig {
        threads: 2,
        txns_per_thread: 500,
        warmup_per_thread: 50,
        ..RunConfig::default()
    };
    let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::B, Dist::Zipfian).with_records(8 << 10));
    let engine = build_engine(
        EngineConfig::falcon()
            .with_cc(CcAlgo::Occ)
            .with_threads(rc.threads),
        &[y.table_def()],
        64 << 20,
        None,
    );
    y.setup(&engine);
    let r = run(&engine, &y, &rc);
    (r, rc.threads)
}

#[test]
fn falcon_ycsb_b_report_is_complete() {
    let (r, threads) = ycsb_b_run();
    let e = &r.obs.engine;

    // Engine counters that must move on a Falcon YCSB-B run.
    assert_eq!(e.commits, r.committed, "obs commit count must match");
    assert!(e.log_appends > 0, "small-log-window appends not counted");
    assert!(e.log_append_bytes > 0);
    assert!(
        e.hot_hits > 0,
        "Zipfian updates must hit the hot-tuple LRU (hits {} misses {})",
        e.hot_hits,
        e.hot_misses,
    );
    assert!(e.flush_hinted + e.flush_skipped_hot > 0);

    // YCSB-B exercises reads and updates; both types must carry
    // latency and phase histograms (the other types legitimately stay
    // empty under this mix).
    assert_eq!(r.obs.types.len(), 5, "one slot per YCSB txn type");
    for t in r
        .obs
        .types
        .iter()
        .filter(|t| t.name == "read" || t.name == "update")
    {
        assert!(
            t.latency.count() > 0,
            "type {} committed nothing in 1000 txns",
            t.name
        );
        assert!(t.latency.percentile(50.0) <= t.latency.percentile(95.0));
        assert!(t.latency.percentile(95.0) <= t.latency.percentile(99.0));
        let lookups = &t.phases[Phase::IndexLookup as usize];
        assert!(lookups.count() > 0, "type {} traced no lookups", t.name);
    }

    // The JSON document is schema-versioned and carries the merged
    // device stats.
    let report = RunReport {
        meta: ReportMeta {
            bench: "obs_report_test".into(),
            engine: "Falcon".into(),
            cc: "OCC".into(),
            workload: "YCSB-B/zipfian".into(),
            threads,
        },
        committed: r.committed,
        aborted: r.aborted,
        dropped: r.dropped,
        elapsed_ns: r.elapsed_ns,
        run: r.obs.clone(),
        device: r.stats,
        recovery: None,
        race: None,
    };
    let v = report.to_json();
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("falcon-obs/v1")
    );
    assert!(v.get("schema_version").and_then(Value::as_u64).is_some());
    let engine_log = v
        .get("engine")
        .and_then(|e| e.get("log_window"))
        .and_then(|l| l.get("appends"))
        .and_then(Value::as_u64)
        .expect("engine.log_window.appends");
    assert!(engine_log > 0);
    let dev_accesses = v
        .get("device")
        .and_then(|d| d.get("accesses"))
        .and_then(Value::as_u64)
        .expect("device.accesses");
    assert_eq!(dev_accesses, r.stats.total.accesses);
    let types = v.get("types").and_then(Value::as_array).expect("types");
    assert_eq!(types.len(), 5);
    for t in types {
        for key in ["p50", "p95", "p99"] {
            assert!(
                t.get("latency").and_then(|l| l.get(key)).is_some(),
                "missing latency.{key}"
            );
        }
        let phases = t.get("phases").expect("phases object");
        for p in Phase::ALL {
            assert!(
                phases.get(p.name()).and_then(|h| h.get("p99")).is_some(),
                "missing phase {}",
                p.name()
            );
        }
    }

    // The rendered table mentions every transaction type.
    let table = report.render_table();
    assert!(table.contains("read") && table.contains("update"));
}

#[test]
fn default_and_obs_runs_agree_on_headline_numbers() {
    // The obs feature must observe, not perturb: committed counts are
    // deterministic in virtual time, so an instrumented run must commit
    // exactly what the harness was asked for.
    let (r, _) = ycsb_b_run();
    assert_eq!(r.committed + r.dropped, 2 * 500);
}
