//! The B⁺-tree split protocol under the persistency-order analyzer
//! (requires `--features persist-check`).
//!
//! A split runs as its own analyzer pseudo-transaction: the raised
//! `splitting` flag plays the log header, the new nodes and the pointer
//! swing are its logged state, and the flag-clear store is the commit
//! record. Driving a *real* split on a traced ADR device proves the
//! hardened path is flush-clean (R1/R2/R3 all quiet), and the two
//! fault-injection hooks prove the analyzer is actually watching: a
//! dropped node write-back must raise FlushCoverage *and*
//! CommitDurability, and a skipped commit fence must raise
//! FenceOrdering.

#![cfg(feature = "persist-check")]

use falcon_check::{check, Report, Rule};
use falcon_index::{Index, NbTree};
use falcon_storage::layout::{format, index_slot};
use falcon_storage::NvmAllocator;
use pmem_sim::{MemCtx, PersistDomain, PmemDevice, SimConfig};

/// Number of sequential inserts after which a fresh tree first splits
/// (probed, not hard-coded, so the test tracks node-layout changes).
fn leaf_split_at() -> u64 {
    let (_dev, t, mut ctx) = build_tree();
    let mut n = 0u64;
    loop {
        n += 1;
        t.insert(n, n, &mut ctx).unwrap();
        if t.shape(&mut ctx).0 > 1 {
            return n;
        }
        assert!(n < 1 << 16, "tree never split");
    }
}

fn build_tree() -> (PmemDevice, NbTree, MemCtx) {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(16 << 20)
            .with_domain(PersistDomain::Adr),
    )
    .unwrap();
    format(&dev).unwrap();
    let alloc = NvmAllocator::new(dev.clone());
    let mut ctx = MemCtx::new(0);
    let t = NbTree::create(&alloc, index_slot(2), &mut ctx).unwrap();
    (dev, t, ctx)
}

/// Fill a leaf to the brink, start the trace, trigger the split with
/// the given faults injected, and run the analyzer over exactly the
/// split's events.
fn traced_split(skip_wb: Option<u64>, skip_fence: bool) -> Report {
    let split_at = leaf_split_at();
    let (dev, t, mut ctx) = build_tree();
    for k in 1..split_at {
        t.insert(k, k * 7, &mut ctx).unwrap();
    }
    dev.quiesce();
    dev.trace_start();
    if let Some(n) = skip_wb {
        t.inject_skip_writeback(n);
    }
    if skip_fence {
        t.inject_skip_split_fence();
    }
    t.insert(split_at, split_at * 7, &mut ctx).unwrap();
    check(&dev.trace_take())
}

#[test]
fn hardened_split_is_flush_clean_under_adr() {
    let report = traced_split(None, false);
    assert_eq!(report.txns_committed, 1, "{report}");
    report.assert_clean();
}

#[test]
fn dropped_node_writeback_fires_r1_and_r2() {
    // Skip #1: the first protected write-back after the flag-set (#0)
    // is the whole-node flush of the new left leaf.
    let report = traced_split(Some(1), false);
    assert!(
        !report.of_rule(Rule::FlushCoverage).is_empty(),
        "R2 must flag the unflushed node: {report}"
    );
    assert!(
        !report.of_rule(Rule::CommitDurability).is_empty(),
        "R1 must flag the non-durable split state at commit: {report}"
    );
}

#[test]
fn skipped_commit_fence_fires_r3() {
    let report = traced_split(None, true);
    assert!(
        !report.of_rule(Rule::FenceOrdering).is_empty(),
        "R3 must flag the unfenced flag-clear commit record: {report}"
    );
}
