//! The checkpoint epoch publish under the persistency-order analyzer
//! (requires `--features persist-check`).
//!
//! A boundary checkpoint publish runs as its own analyzer
//! pseudo-transaction: the bank write is its logged state, the epoch
//! swing store is its commit record, and the post-swing flush + fence
//! make it durable. Driving the *real* `checkpoint::publish` on a
//! traced ADR device proves the protocol is flush-clean (R1/R2/R3 all
//! quiet), and the two fault-injection hooks prove the analyzer is
//! actually watching: dropped record-line flushes must raise
//! FlushCoverage and CommitDurability, and a skipped pre-swing fence
//! must raise FenceOrdering.

#![cfg(feature = "persist-check")]

use falcon_check::{check, Report, Rule};
use falcon_core::checkpoint::{self, inject};
use pmem_sim::{MemCtx, PAddr, PersistDomain, PmemDevice, SimConfig};

/// Publish one epoch on a traced ADR device with the given faults.
fn traced_publish(skip_flush: bool, skip_fence: bool) -> Report {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(16 << 20)
            .with_domain(PersistDomain::Adr),
    )
    .unwrap();
    let mut ctx = MemCtx::new(0);
    let area = PAddr(1 << 20);
    dev.quiesce();
    dev.trace_start();
    inject::set_skip_bank_flush(skip_flush);
    inject::set_skip_pre_swing_fence(skip_fence);
    checkpoint::publish(&dev, area, 0, 1, 4096, true, &mut ctx);
    inject::set_skip_bank_flush(false);
    inject::set_skip_pre_swing_fence(false);
    check(&dev.trace_take())
}

#[test]
fn epoch_publish_is_flush_clean_under_adr() {
    let report = traced_publish(false, false);
    assert_eq!(report.txns_committed, 1, "{report}");
    report.assert_clean();
}

#[test]
fn consecutive_publishes_alternate_banks_and_stay_clean() {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(16 << 20)
            .with_domain(PersistDomain::Adr),
    )
    .unwrap();
    let mut ctx = MemCtx::new(0);
    let area = PAddr(1 << 20);
    dev.quiesce();
    dev.trace_start();
    for epoch in 1..=4u64 {
        checkpoint::publish(&dev, area, 2, epoch, epoch * 100, true, &mut ctx);
    }
    let report = check(&dev.trace_take());
    assert_eq!(report.txns_committed, 4, "{report}");
    report.assert_clean();
    // And the final record survives a power cut.
    dev.crash();
    assert_eq!(
        checkpoint::read_record(&dev, area, 2, &mut ctx),
        checkpoint::CkptRead::Valid {
            epoch: 4,
            mark: 400
        }
    );
}

#[test]
fn dropped_record_flush_fires_r1_and_r2() {
    let report = traced_publish(true, false);
    assert!(
        !report.of_rule(Rule::FlushCoverage).is_empty(),
        "R2 must flag the unflushed bank: {report}"
    );
    assert!(
        !report.of_rule(Rule::CommitDurability).is_empty(),
        "R1 must flag the non-durable publish at its commit: {report}"
    );
}

#[test]
fn skipped_pre_swing_fence_fires_r3() {
    let report = traced_publish(false, true);
    assert!(
        !report.of_rule(Rule::FenceOrdering).is_empty(),
        "R3 must flag the unfenced epoch swing: {report}"
    );
}

#[test]
fn backpressure_publish_is_silent_in_the_trace() {
    // Mid-transaction (non-boundary) publishes must not emit analyzer
    // events: a nested TxnBegin would clobber the enclosing
    // transaction's per-thread analyzer state.
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(16 << 20)
            .with_domain(PersistDomain::Adr),
    )
    .unwrap();
    let mut ctx = MemCtx::new(0);
    dev.quiesce();
    dev.trace_start();
    checkpoint::publish(&dev, PAddr(1 << 20), 0, 1, 64, false, &mut ctx);
    let report = check(&dev.trace_take());
    assert_eq!(report.txns_committed, 0, "{report}");
    report.assert_clean();
}
