//! Acceptance test for the cost-attribution plane (obs-v4): the
//! (txn_type × phase) matrix must account for *every* device event the
//! run's `DeviceStats` counted — nothing lost, nothing double-charged —
//! across both commit disciplines (in-place Falcon/Inp and
//! out-of-place Outp/ZenS), and the folded-stack emitter must produce
//! well-formed `frame;frame;frame value` lines.

#![cfg(feature = "obs")]

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, RunResult, Workload};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};

fn ycsb_run(cfg: EngineConfig, cc: CcAlgo) -> RunResult {
    let rc = RunConfig {
        threads: 2,
        txns_per_thread: 400,
        warmup_per_thread: 40,
        ..RunConfig::default()
    };
    let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Zipfian).with_records(4 << 10));
    let engine = build_engine(
        cfg.with_cc(cc).with_threads(rc.threads),
        &[y.table_def()],
        64 << 20,
        None,
    );
    y.setup(&engine);
    run(&engine, &y, &rc)
}

/// The invariant: summing the matrix over all (type, phase) cells
/// reproduces the run's aggregated `ThreadStats` field-for-field.
fn assert_accounts_for_device(r: &RunResult, label: &str) {
    let cost = r.obs.cost.as_ref().expect("attribution ran");
    let total = cost.total();
    assert_eq!(
        total.stats, r.stats.total,
        "{label}: matrix total must equal DeviceStats.total"
    );
    // Virtual time: the matrix holds the sum of per-thread clocks, the
    // run's elapsed_ns is their max.
    assert!(total.ns >= r.elapsed_ns, "{label}: ns under-attributed");
    assert!(
        total.ns <= r.elapsed_ns * r.stats.threads as u64,
        "{label}: ns over-attributed"
    );
}

#[test]
fn matrix_accounts_for_every_device_event_in_place() {
    let r = ycsb_run(EngineConfig::falcon(), CcAlgo::Occ);
    assert!(r.committed > 0);
    assert_accounts_for_device(&r, "falcon/occ");

    // An update-heavy Falcon run must show log-append and commit-fence
    // costs attributed to the update type specifically.
    let cost = r.obs.cost.as_ref().unwrap();
    let update_row = r
        .obs
        .types
        .iter()
        .position(|t| t.name == "update")
        .expect("ycsb update type");
    let row = cost.matrix().row_total(update_row);
    assert!(row.stats.sfences > 0, "update commits must fence");
    assert!(row.ns > 0);
}

#[test]
fn matrix_accounts_for_every_device_event_out_of_place() {
    let r = ycsb_run(EngineConfig::outp(), CcAlgo::Mvocc);
    assert!(r.committed > 0);
    assert_accounts_for_device(&r, "outp/mvocc");

    let r = ycsb_run(EngineConfig::zens(), CcAlgo::Mvto);
    assert!(r.committed > 0);
    assert_accounts_for_device(&r, "zens/mvto");
}

#[test]
fn folded_stacks_are_well_formed() {
    let r = ycsb_run(EngineConfig::falcon(), CcAlgo::Occ);
    let folded = r.obs.cost.as_ref().unwrap().folded("ycsb_a");
    assert!(!folded.is_empty());
    let mut total_ns = 0u64;
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("frame stack + value");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 3, "prefix;txn_type;phase: {line}");
        assert_eq!(frames[0], "ycsb_a");
        assert!(!frames[1].is_empty() && !frames[2].is_empty());
        total_ns += value.parse::<u64>().expect("integer sample value");
    }
    // The folded output carries the full attributed virtual time.
    assert_eq!(total_ns, r.obs.cost.as_ref().unwrap().total().ns);
}
