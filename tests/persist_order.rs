//! End-to-end persistency-order checking over the *real* device
//! recorder (requires `--features persist-check`).
//!
//! Each test drives a `PmemDevice` through a hand-written commit
//! protocol — correct, or with one injected fault (a skipped `clwb`, a
//! reordered fence, a dropped log-window flush) — takes the recorded
//! trace, and proves the corresponding rule fires exactly there while
//! the faultless twin stays clean. Unlike the synthetic-trace tests in
//! `falcon-check`, these go through the actual recorder: the events the
//! checker sees are whatever the device emitted.
#![cfg(feature = "persist-check")]

use falcon_check::{check, Event, LintKind, Report, Rule};
use pmem_sim::{MemCtx, PAddr, PersistDomain, PmemDevice, SimConfig};

fn device(domain: PersistDomain) -> PmemDevice {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(1 << 20)
            .with_domain(domain),
    )
    .unwrap();
    dev.trace_start();
    dev
}

/// A minimal logged commit against the real device. The log "window" is
/// one header line at `base` plus one record line after it; the payload
/// tuple lives at `base + 1024`.
///
/// Faults: `skip_record_flush` drops the record line's `clwb` (R1);
/// `late_fence` stores the commit mark before fencing the log (R3);
/// `skip_data_flush` announces the data flush but never issues it (R2).
fn run_commit(
    dev: &PmemDevice,
    skip_record_flush: bool,
    late_fence: bool,
    skip_data_flush: bool,
) -> Report {
    let mut ctx = MemCtx::new(0);
    let base = PAddr(4096);
    let hdr = base;
    let rec = base.add(64);
    let data = base.add(1024);

    dev.trace_emit(Event::TxnBegin { thread: 0, tid: 1 });
    // Log the intent: header (tid + UNCOMMITTED state), then the record.
    dev.trace_emit(Event::LogRange {
        thread: 0,
        addr: hdr.0,
        len: 64,
    });
    dev.store_u64(hdr.add(8), 1, &mut ctx);
    dev.store_u64(hdr, 1, &mut ctx); // state = UNCOMMITTED
    dev.clwb(hdr, &mut ctx);
    dev.trace_emit(Event::LogRange {
        thread: 0,
        addr: rec.0,
        len: 64,
    });
    dev.write(rec, &[0xAB; 48], &mut ctx);
    if !skip_record_flush {
        dev.clwb(rec, &mut ctx);
    }
    if !late_fence {
        dev.sfence(&mut ctx);
    }
    // Commit record: state = COMMITTED, flushed and fenced.
    dev.trace_emit(Event::CommitRecord {
        thread: 0,
        addr: hdr.0,
    });
    dev.store_u64(hdr, 2, &mut ctx);
    dev.clwb(hdr, &mut ctx);
    dev.sfence(&mut ctx);
    dev.trace_emit(Event::TxnCommit { thread: 0, tid: 1 });

    // Apply in place, then the hinted data flush.
    dev.write(data, &[7; 64], &mut ctx);
    dev.trace_emit(Event::DurableHint {
        thread: 0,
        addr: data.0,
        len: 64,
    });
    if !skip_data_flush {
        dev.clwb(data, &mut ctx);
        dev.sfence(&mut ctx);
    }
    check(&dev.trace_take())
}

#[test]
fn correct_protocol_is_clean_on_adr() {
    let dev = device(PersistDomain::Adr);
    let report = run_commit(&dev, false, false, false);
    assert_eq!(report.txns_committed, 1);
    report.assert_clean();
}

#[test]
fn r1_fires_for_dropped_log_flush_on_adr() {
    let dev = device(PersistDomain::Adr);
    let report = run_commit(&dev, true, false, false);
    assert_eq!(report.of_rule(Rule::CommitDurability).len(), 1, "{report}");
    assert!(report.of_rule(Rule::FenceOrdering).is_empty(), "{report}");
}

#[test]
fn r2_fires_for_skipped_data_flush_on_adr() {
    let dev = device(PersistDomain::Adr);
    let report = run_commit(&dev, false, false, true);
    assert_eq!(report.of_rule(Rule::FlushCoverage).len(), 1, "{report}");
    assert!(
        report.of_rule(Rule::CommitDurability).is_empty(),
        "{report}"
    );
}

#[test]
fn r3_fires_for_reordered_fence_on_adr() {
    let dev = device(PersistDomain::Adr);
    let report = run_commit(&dev, false, true, false);
    assert_eq!(report.of_rule(Rule::FenceOrdering).len(), 1, "{report}");
}

#[test]
fn every_fault_is_forgiven_on_eadr() {
    // The persistent cache makes all three faults harmless; the checker
    // must not cry wolf on an eADR platform.
    for (skip_rec, late, skip_data) in [
        (true, false, false),
        (false, true, false),
        (false, false, true),
    ] {
        let dev = device(PersistDomain::Eadr);
        run_commit(&dev, skip_rec, late, skip_data).assert_clean();
    }
}

#[test]
fn r4_lints_partial_block_flush_through_the_device() {
    let dev = device(PersistDomain::Adr);
    let mut ctx = MemCtx::new(0);
    let base = PAddr(8192); // 256-aligned: one media block.
    dev.write(base, &[1; 256], &mut ctx);
    dev.clwb(base, &mut ctx); // only line 0 of the block
    dev.sfence(&mut ctx);
    let report = check(&dev.trace_take());
    assert_eq!(
        report.of_lint(LintKind::PartialBlockFlush).len(),
        1,
        "{report}"
    );

    // Whole-block flush: no lint.
    let dev = device(PersistDomain::Adr);
    dev.write(base, &[1; 256], &mut ctx);
    for i in 0..4u64 {
        dev.clwb(base.add(i * 64), &mut ctx);
    }
    dev.sfence(&mut ctx);
    let report = check(&dev.trace_take());
    assert!(
        report.of_lint(LintKind::PartialBlockFlush).is_empty(),
        "{report}"
    );
}

#[test]
fn redundant_flush_lints_through_the_device() {
    let dev = device(PersistDomain::Adr);
    let mut ctx = MemCtx::new(0);
    let a = PAddr(4096);
    dev.store_u64(a, 1, &mut ctx);
    dev.clwb(a, &mut ctx);
    dev.sfence(&mut ctx);
    dev.clwb(a, &mut ctx); // nothing stored in between
    let report = check(&dev.trace_take());
    assert_eq!(
        report.of_lint(LintKind::RedundantFlush).len(),
        1,
        "{report}"
    );
    report.assert_clean();
}

#[test]
fn recorder_is_inert_until_started() {
    let dev = PmemDevice::new(
        SimConfig::small()
            .with_capacity(1 << 20)
            .with_domain(PersistDomain::Adr),
    )
    .unwrap();
    let mut ctx = MemCtx::new(0);
    dev.store_u64(PAddr(0), 1, &mut ctx);
    dev.clwb(PAddr(0), &mut ctx);
    let t = dev.trace_take();
    assert!(t.events.is_empty(), "nothing recorded before trace_start");
}
