//! Workspace-level integration tests: the paper's headline *shape*
//! claims, asserted end-to-end through the `falcon` facade at small
//! scale. (The full-scale regenerations live in `crates/bench`.)

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::tpcc::{Tpcc, TpccScale};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};

fn rc(threads: usize, txns: u64) -> RunConfig {
    RunConfig {
        threads,
        txns_per_thread: txns,
        warmup_per_thread: txns / 10,
        ..Default::default()
    }
}

fn ycsb_run(cfg: EngineConfig, dist: Dist, txns: u64) -> falcon::workloads::harness::RunResult {
    let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, dist).with_records(24 << 10));
    let engine = build_engine(
        cfg.with_cc(CcAlgo::Occ).with_threads(2),
        &[y.table_def()],
        64 << 20,
        None,
    );
    y.setup(&engine);
    run(&engine, &y, &rc(2, txns))
}

/// §6.2.3 / Figure 9 (Uniform): the small log window buys Falcon a
/// clear win over the conventional-log Inp, and the clwb-less variant
/// pays write amplification.
#[test]
fn ycsb_uniform_falcon_beats_inp_and_noflush_pays_amplification() {
    let falcon = ycsb_run(EngineConfig::falcon(), Dist::Uniform, 2_000);
    let inp = ycsb_run(EngineConfig::inp(), Dist::Uniform, 2_000);
    let noflush = ycsb_run(EngineConfig::falcon_no_flush(), Dist::Uniform, 2_000);

    assert!(
        falcon.txn_per_sec > inp.txn_per_sec * 1.05,
        "Falcon {} must beat Inp {}",
        falcon.txn_per_sec,
        inp.txn_per_sec
    );
    assert!(
        falcon.stats.total.media_bytes_written() < inp.stats.total.media_bytes_written(),
        "the window must cut media writes"
    );
    assert!(
        noflush.stats.total.write_amplification() > falcon.stats.total.write_amplification() * 2.0,
        "no-flush amplification {} must dwarf hinted-flush {}",
        noflush.stats.total.write_amplification(),
        falcon.stats.total.write_amplification()
    );
}

/// §6.2.3 / Figure 9 (Zipfian): hot-tuple tracking beats flush-all.
#[test]
fn ycsb_zipfian_hot_tuple_tracking_beats_all_flush() {
    let falcon = ycsb_run(EngineConfig::falcon(), Dist::Zipfian, 4_000);
    let all = ycsb_run(EngineConfig::falcon_all_flush(), Dist::Zipfian, 4_000);
    assert!(
        falcon.stats.total.clwb_issued < all.stats.total.clwb_issued * 8 / 10,
        "tracking must skip a good fraction of flushes: {} vs {}",
        falcon.stats.total.clwb_issued,
        all.stats.total.clwb_issued
    );
    assert!(
        falcon.txn_per_sec >= all.txn_per_sec,
        "Falcon {} must be at least All-Flush {}",
        falcon.txn_per_sec,
        all.txn_per_sec
    );
}

/// Figure 7: on TPC-C every engine completes the mix and Falcon beats
/// Inp (the in-place logging saving).
#[test]
fn tpcc_falcon_beats_inp() {
    let mut out = Vec::new();
    for cfg in [EngineConfig::falcon(), EngineConfig::inp()] {
        let t = Tpcc::new(TpccScale::tiny().with_warehouses(4));
        let engine = build_engine(
            cfg.with_cc(CcAlgo::Occ).with_threads(2),
            &t.table_defs(),
            t.scale().approx_bytes() * 2,
            None,
        );
        t.setup(&engine);
        out.push(run(&engine, &t, &rc(2, 400)));
    }
    assert!(
        out[0].txn_per_sec > out[1].txn_per_sec,
        "Falcon {} vs Inp {}",
        out[0].txn_per_sec,
        out[1].txn_per_sec
    );
}

/// §6.5: recovery — Falcon replays windows only; ZenS scans the heap.
#[test]
fn recovery_shape_holds_end_to_end() {
    let mut totals = Vec::new();
    for cfg in [EngineConfig::falcon(), EngineConfig::zens()] {
        let cfg = cfg.with_cc(CcAlgo::Occ).with_threads(2);
        let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Uniform).with_records(8 << 10));
        let engine = build_engine(cfg.clone(), &[y.table_def()], 32 << 20, None);
        y.setup(&engine);
        let _ = run(&engine, &y, &rc(2, 100));
        let dev = engine.device().clone();
        drop(engine);
        dev.crash();
        let defs = [y.table_def()];
        let (_e, rep) = falcon::recover(dev, cfg, &defs).unwrap();
        totals.push(rep);
    }
    assert_eq!(totals[0].tuples_scanned, 0);
    assert!(totals[1].tuples_scanned >= 8 << 10);
    assert!(totals[1].total_ns > totals[0].total_ns * 50);
}

/// The facade exposes the documented API surface.
#[test]
fn facade_reexports_work() {
    let dev = falcon::PmemDevice::new(falcon::SimConfig::small()).unwrap();
    assert_eq!(dev.config().domain, falcon::PersistDomain::Eadr);
    let cfg = falcon::EngineConfig::falcon();
    assert_eq!(cfg.name, "Falcon");
    assert_eq!(falcon::CcAlgo::all().len(), 6);
}
