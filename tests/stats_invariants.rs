//! Cross-layer counter invariants.
//!
//! The simulator counts cache-model accesses independently of the
//! hit/miss split, so any accounting drift between the layers shows up
//! here: after a YCSB run, every engine variant must satisfy
//! `accesses == cache_hits + cache_misses`, and the device can never
//! write back more lines on `clwb` than `clwb` was issued for.

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};

#[test]
fn device_counters_add_up_for_every_engine() {
    let rc = RunConfig {
        threads: 2,
        txns_per_thread: 300,
        warmup_per_thread: 30,
        ..RunConfig::default()
    };
    for cfg in EngineConfig::overall_lineup() {
        let name = cfg.name;
        let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Zipfian).with_records(8 << 10));
        let engine = build_engine(
            cfg.with_cc(CcAlgo::Occ).with_threads(rc.threads),
            &[y.table_def()],
            64 << 20,
            None,
        );
        y.setup(&engine);
        let r = run(&engine, &y, &rc);

        // Per-thread and in aggregate: the independent access counter
        // must equal the hit/miss split exactly.
        let t = &r.stats.total;
        assert!(t.accesses > 0, "{name}: no cache-model traffic recorded");
        assert_eq!(
            t.accesses,
            t.cache_hits + t.cache_misses,
            "{name}: access counter drifted from hit+miss",
        );
        assert!(
            t.clwb_writebacks <= t.clwb_issued,
            "{name}: more clwb writebacks ({}) than clwbs issued ({})",
            t.clwb_writebacks,
            t.clwb_issued,
        );
    }
}

/// Checkpoint counters must reconcile with the device- and window-level
/// counters they piggyback on, and the cost matrix must keep accounting
/// for every device event with the Checkpoint phase in play.
#[cfg(feature = "obs")]
#[test]
fn checkpoint_counters_reconcile_with_device_stats() {
    use falcon::obs::Phase;

    let rc = RunConfig {
        threads: 2,
        txns_per_thread: 400,
        warmup_per_thread: 40,
        ..RunConfig::default()
    };
    // A tiny window and spill cap so YCSB-A updates spill constantly
    // and both checkpoint triggers (boundary and backpressure) fire.
    let mut cfg = EngineConfig::falcon()
        .with_cc(CcAlgo::Occ)
        .with_threads(rc.threads)
        .with_spill_cap(16 << 10, 8 << 10);
    cfg.window_bytes = 1024;
    let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Zipfian).with_records(4 << 10));
    let engine = build_engine(cfg, &[y.table_def()], 64 << 20, None);
    y.setup(&engine);
    let r = run(&engine, &y, &rc);
    assert!(r.committed > 0);

    let es = &r.obs.engine;
    assert!(es.ckpt_published > 0, "spilly run must checkpoint: {es:?}");
    assert!(es.ckpt_epoch > 0);
    assert!(es.spill_truncations > 0);
    // Every backpressure stall consumed exactly one LogOverflow that
    // the window itself also counted as a full stall.
    assert!(
        es.ckpt_backpressure_stalls <= es.log_full_stalls,
        "ckpt stalls {} > window full stalls {}",
        es.ckpt_backpressure_stalls,
        es.log_full_stalls
    );
    // ...and resolved into a published drain checkpoint.
    assert!(
        es.ckpt_published >= es.ckpt_backpressure_stalls,
        "published {} < stalls {}",
        es.ckpt_published,
        es.ckpt_backpressure_stalls
    );
    // Reclamation can never exceed what was spilled, modulo the tail
    // that was already outstanding when the post-warmup counter reset
    // ran — that leftover is bounded by the spill cap itself.
    assert!(
        es.spill_bytes_truncated <= es.log_spill_bytes + (16 << 10),
        "truncated {} > spilled {} + cap",
        es.spill_bytes_truncated,
        es.log_spill_bytes
    );

    // The AttrMatrix invariant: with the Checkpoint phase attributing
    // its own spans, the matrix still accounts for *every* device event
    // — nothing lost, nothing double-charged.
    let cost = r.obs.cost.as_ref().expect("attribution ran");
    assert_eq!(
        cost.total().stats,
        r.stats.total,
        "matrix total must equal DeviceStats.total with checkpoints on"
    );
    // And the checkpoint column is populated: each published checkpoint
    // fences at least once (drain fence + fenced swing).
    let ck = cost.col_total(Phase::Checkpoint as usize);
    assert!(ck.ns > 0, "checkpoint phase attributed no time");
    assert!(
        ck.stats.sfences >= es.ckpt_published,
        "checkpoint column fences {} < published {}",
        ck.stats.sfences,
        es.ckpt_published
    );
}
