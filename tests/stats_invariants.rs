//! Cross-layer counter invariants.
//!
//! The simulator counts cache-model accesses independently of the
//! hit/miss split, so any accounting drift between the layers shows up
//! here: after a YCSB run, every engine variant must satisfy
//! `accesses == cache_hits + cache_misses`, and the device can never
//! write back more lines on `clwb` than `clwb` was issued for.

use falcon::engine::{CcAlgo, EngineConfig};
use falcon::workloads::harness::{build_engine, run, RunConfig, Workload};
use falcon::workloads::ycsb::{Dist, Ycsb, YcsbConfig, YcsbWorkload};

#[test]
fn device_counters_add_up_for_every_engine() {
    let rc = RunConfig {
        threads: 2,
        txns_per_thread: 300,
        warmup_per_thread: 30,
        ..RunConfig::default()
    };
    for cfg in EngineConfig::overall_lineup() {
        let name = cfg.name;
        let y = Ycsb::new(YcsbConfig::new(YcsbWorkload::A, Dist::Zipfian).with_records(8 << 10));
        let engine = build_engine(
            cfg.with_cc(CcAlgo::Occ).with_threads(rc.threads),
            &[y.table_def()],
            64 << 20,
            None,
        );
        y.setup(&engine);
        let r = run(&engine, &y, &rc);

        // Per-thread and in aggregate: the independent access counter
        // must equal the hit/miss split exactly.
        let t = &r.stats.total;
        assert!(t.accesses > 0, "{name}: no cache-model traffic recorded");
        assert_eq!(
            t.accesses,
            t.cache_hits + t.cache_misses,
            "{name}: access counter drifted from hit+miss",
        );
        assert!(
            t.clwb_writebacks <= t.clwb_issued,
            "{name}: more clwb writebacks ({}) than clwbs issued ({})",
            t.clwb_writebacks,
            t.clwb_issued,
        );
    }
}
